"""Straight-line drawing of a 2-connected block by Tutte's method.

This is the computational core of the realization theorem (Theorem 3.5):
the paper itself proposes Tutte's barycentric embedding ("place the
remaining vertices at the center of gravity of their adjacent nodes",
solved as a linear system).  We draw one biconnected block at a time:

1. the prescribed outer facial cycle is placed on a convex polygon with
   *rational* vertices (points on a rational circle), in clockwise order
   (facial walks carry the face on their left, so the outer walk runs
   clockwise around the block);
2. every interior face longer than a triangle receives a *star* node
   connected to its corners, making the interior triangulated — by
   Floater's generalization of Tutte's theorem, the barycentric solution
   of a triangulated disc with convex boundary is a valid embedding;
3. the linear system is solved in floating point and snapped to
   rationals; an exact orientation check of every triangle certifies the
   snap, with an exact rational Gaussian-elimination fallback when the
   certificate fails (the true solution of the rational system is valid
   by the theorem, so the fallback always succeeds);
4. star nodes are discarded.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from ..errors import InvariantError
from ..geometry import Point

__all__ = ["draw_block", "convex_positions", "trace_block_faces"]

Node = str
SDart = tuple[Node, Node]


def convex_positions(n: int, radius: Fraction = Fraction(1)) -> list[Point]:
    """*n* rational points in convex position, in CCW order.

    Points lie exactly on the circle of the given radius (rational
    tan-half-angle parameterization).
    """
    from ..regions.algebraic import AlgRegion

    if n < 3:
        raise InvariantError("convex positions need n >= 3")
    circle = AlgRegion.circle(0, 0, radius, n=n)
    return list(circle.boundary_polygon().vertices)


def trace_block_faces(
    block_nodes: set[Node],
    rotation: dict[Node, tuple[Node, ...]],
    block_segments: frozenset[tuple[Node, Node]],
) -> list[tuple[SDart, ...]]:
    """Facial cycles of one block, traced with the restricted rotation.

    The restriction of the component rotation to the block keeps the
    cyclic order of block neighbours (germ arcs of a block at a cut
    vertex are contiguous, so dropping foreign germs preserves facial
    structure of the block).
    """
    ring: dict[Node, list[Node]] = {}
    for v in block_nodes:
        ring[v] = [
            w
            for w in rotation[v]
            if tuple(sorted((v, w))) in block_segments
        ]

    def next_dart(d: SDart) -> SDart:
        tail, head = d
        r = ring[head]
        # position of the twin (head -> tail) in head's ring, then one
        # step clockwise.
        i = r.index(tail)
        return (head, r[(i - 1) % len(r)])

    darts = [
        d
        for seg in block_segments
        for d in (seg, (seg[1], seg[0]))
    ]
    seen: set[SDart] = set()
    faces: list[tuple[SDart, ...]] = []
    for start in sorted(darts):
        if start in seen:
            continue
        walk = []
        d = start
        while d not in seen:
            seen.add(d)
            walk.append(d)
            d = next_dart(d)
        faces.append(tuple(walk))
    return faces


def draw_block(
    block_segments: frozenset[tuple[Node, Node]],
    rotation: dict[Node, tuple[Node, ...]],
    outer_cycle: tuple[SDart, ...],
) -> dict[Node, Point]:
    """Positions for all nodes of a 2-connected block.

    *outer_cycle* must be one of the block's facial cycles; its nodes end
    up on a convex polygon and every other face is drawn inside.
    """
    block_nodes = {n for seg in block_segments for n in seg}
    faces = trace_block_faces(block_nodes, rotation, block_segments)
    outer_key = _cycle_key(outer_cycle)
    inner = [f for f in faces if _cycle_key(f) != outer_key]
    if len(inner) == len(faces):
        raise InvariantError("outer cycle is not a facial cycle of the block")

    # Outer cycle on a convex polygon, clockwise.
    outer_nodes = [d[0] for d in outer_cycle]
    if len(set(outer_nodes)) != len(outer_nodes):
        raise InvariantError(
            "outer facial cycle of a 2-connected block must be simple"
        )
    convex = convex_positions(max(len(outer_nodes), 3))
    positions: dict[Node, Point] = {}
    for node, pos in zip(outer_nodes, reversed(convex[: len(outer_nodes)])):
        positions[node] = pos

    # Triangulate interior faces with star nodes.
    adjacency: dict[Node, set[Node]] = {n: set() for n in block_nodes}
    for u, v in block_segments:
        adjacency[u].add(v)
        adjacency[v].add(u)
    triangles: list[tuple[Node, Node, Node]] = []
    star_count = 0
    for face in inner:
        cycle_nodes = [d[0] for d in face]
        if len(cycle_nodes) == 3:
            triangles.append(tuple(cycle_nodes))
            continue
        star = f"*{star_count}"
        star_count += 1
        adjacency[star] = set()
        for n in cycle_nodes:
            adjacency[star].add(n)
            adjacency[n].add(star)
        k = len(cycle_nodes)
        for i in range(k):
            triangles.append(
                (star, cycle_nodes[i], cycle_nodes[(i + 1) % k])
            )

    interior = [n for n in adjacency if n not in positions]
    if interior:
        solved = _solve_tutte_float(adjacency, positions, interior)
        if solved is None or not _triangles_positive(solved, triangles):
            solved = _solve_tutte_exact(adjacency, positions, interior)
            if not _triangles_positive(solved, triangles):
                raise InvariantError(
                    "Tutte embedding failed orientation certification"
                )
        positions = solved
    elif not _triangles_positive(positions, triangles):
        raise InvariantError("convex placement failed for chordal block")

    return {
        n: p for n, p in positions.items() if not n.startswith("*")
    }


def _cycle_key(cycle: tuple[SDart, ...]) -> frozenset[SDart]:
    return frozenset(cycle)


def _triangles_positive(
    positions: dict[Node, Point], triangles: list[tuple[Node, Node, Node]]
) -> bool:
    """Exact check: every (CCW-traced) triangle has positive area."""
    for a, b, c in triangles:
        pa, pb, pc = positions[a], positions[b], positions[c]
        if (pb - pa).cross(pc - pa) <= 0:
            return False
    return True


def _snap(x: float, precision: int = 1 << 24) -> Fraction:
    return Fraction(round(x * precision), precision)


def _solve_tutte_float(
    adjacency, fixed: dict[Node, Point], interior: list[Node]
) -> dict[Node, Point] | None:
    index = {n: i for i, n in enumerate(interior)}
    k = len(interior)
    a = np.zeros((k, k))
    bx = np.zeros(k)
    by = np.zeros(k)
    for n in interior:
        i = index[n]
        neighbours = adjacency[n]
        a[i, i] = len(neighbours)
        for m in neighbours:
            if m in index:
                a[i, index[m]] -= 1.0
            else:
                p = fixed[m]
                bx[i] += float(p.x)
                by[i] += float(p.y)
    try:
        xs = np.linalg.solve(a, bx)
        ys = np.linalg.solve(a, by)
    except np.linalg.LinAlgError:
        return None
    out = dict(fixed)
    for n, i in index.items():
        out[n] = Point(_snap(xs[i]), _snap(ys[i]))
    return out


def _solve_tutte_exact(
    adjacency, fixed: dict[Node, Point], interior: list[Node]
) -> dict[Node, Point]:
    """Exact rational Gaussian elimination of the Tutte system."""
    index = {n: i for i, n in enumerate(interior)}
    k = len(interior)
    # Augmented matrix rows: k coefficients + bx + by.
    rows: list[list[Fraction]] = []
    for n in interior:
        row = [Fraction(0)] * (k + 2)
        neighbours = adjacency[n]
        row[index[n]] = Fraction(len(neighbours))
        for m in neighbours:
            if m in index:
                row[index[m]] -= 1
            else:
                p = fixed[m]
                row[k] += p.x
                row[k + 1] += p.y
        rows.append(row)

    # Forward elimination with partial pivoting (by absolute value).
    for col in range(k):
        pivot = max(
            range(col, k), key=lambda r: abs(rows[r][col])
        )
        if rows[pivot][col] == 0:
            raise InvariantError("singular Tutte system")
        rows[col], rows[pivot] = rows[pivot], rows[col]
        inv = rows[col][col]
        for r in range(col + 1, k):
            factor = rows[r][col] / inv
            if factor == 0:
                continue
            for c in range(col, k + 2):
                rows[r][c] -= factor * rows[col][c]
    xs = [Fraction(0)] * k
    ys = [Fraction(0)] * k
    for r in range(k - 1, -1, -1):
        sx = rows[r][k] - sum(rows[r][c] * xs[c] for c in range(r + 1, k))
        sy = rows[r][k + 1] - sum(rows[r][c] * ys[c] for c in range(r + 1, k))
        xs[r] = sx / rows[r][r]
        ys[r] = sy / rows[r][r]
    out = dict(fixed)
    for n, i in index.items():
        out[n] = Point(xs[i], ys[i])
    return out
