"""Validation of candidate invariants (Lemma 3.9 / Theorem 3.8).

``validate_invariant`` decides whether an abstract structure over the
invariant's vocabulary is a *labeled planar graph* — i.e. whether it is
the invariant of some spatial instance.  The paper's conditions are
implemented as follows:

(1)–(3)  *candidate graph*: cell sorts disjoint, relations well-typed,
         every edge has at most two endpoint vertices (edges with zero
         endpoints are permitted exactly as *free loops* — the paper's
         degenerate one-region case — and may then appear in no
         orientation tuple);
(3')     label sanity: vertex and edge labels contain at least one
         boundary sign, face labels contain none, and labels are locally
         compatible along incidences;
(4)      *embedded graph*: at every vertex the orientation relation O is
         realized by a cyclic arrangement of edge-germs, with CW the
         exact reversal of CCW;
(5)      face-boundary consistency: the facial walks traced from the
         rotation system can be assigned to the declared faces so that
         every face's ``Face_Edges`` is exactly covered;
(6)      *planarity*: every skeleton component satisfies Euler's formula
         ``V - E + W = 2`` for its traced walks (a rotation system of
         positive genus fails this), and the component-nesting relation
         induced by the face assignment is a forest rooted at the
         exterior face;
(7)      *labeled* planar graph: for every region, its set of faces and
         the complementary set are both connected in the dual graph, and
         the exterior face belongs to no region.

The function also returns the *witness* data (rotation system and
walk-to-face assignment) that the realization algorithm (Theorem 3.5)
consumes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..errors import ValidationError
from .structure import CCW, CW, TopologicalInvariant

__all__ = [
    "validate_invariant",
    "validate_database",
    "ValidationWitness",
    "extract_rotation_system",
    "trace_walks",
]

# A dart is (edge id, occurrence index 0|1).
Dart = tuple[str, int]


@dataclass
class ValidationWitness:
    """Constructive evidence produced by a successful validation."""

    #: vertex -> CCW-cyclic tuple of darts leaving it.
    rotations: dict[str, tuple[Dart, ...]]
    #: per skeleton component: list of facial walks, each a tuple of darts.
    walks_by_component: list[list[tuple[Dart, ...]]]
    #: (component index, walk index) -> face id.
    walk_face: dict[tuple[int, int], str]
    #: component index -> walk index of its outer walk.
    outer_walk: dict[int, int]
    #: component index -> set of cells (vertices and edges).
    components: list[frozenset[str]] = field(default_factory=list)


def validate_database(db) -> ValidationWitness:
    """Theorem 3.8: check that a ``Th`` database is in ``thematic``'s image."""
    from .thematic import database_to_invariant

    return validate_invariant(database_to_invariant(db))


def validate_invariant(t: TopologicalInvariant) -> ValidationWitness:
    """Validate conditions (1)-(7); raise ValidationError on failure."""
    _check_sorts(t)
    _check_labels(t)
    rotations = extract_rotation_system(t)
    components = t.skeleton_components()
    walks_by_component = [
        trace_walks(t, rotations, comp) for comp in components
    ]
    _check_euler(t, components, walks_by_component)
    walk_face, outer_walk = _assign_walks_to_faces(
        t, components, walks_by_component
    )
    _check_region_faces(t)
    return ValidationWitness(
        rotations=rotations,
        walks_by_component=walks_by_component,
        walk_face=walk_face,
        outer_walk=outer_walk,
        components=components,
    )


# ---------------------------------------------------------------------------
# Conditions (1)-(3): candidate graph.
# ---------------------------------------------------------------------------


def _check_sorts(t: TopologicalInvariant) -> None:
    if t.vertices & t.edges or t.vertices & t.faces or t.edges & t.faces:
        raise ValidationError("cell sorts are not pairwise disjoint", 1)
    if t.exterior_face not in t.faces:
        raise ValidationError("exterior face is not a face", 1)
    senses = {s for (s, _v, _e1, _e2) in t.orientation}
    if not senses <= {CW, CCW}:
        raise ValidationError(f"unknown orientation senses {senses}", 1)
    for e, vs in t.endpoints.items():
        if e not in t.edges:
            raise ValidationError(f"endpoints of non-edge {e!r}", 2)
        if not set(vs) <= t.vertices:
            raise ValidationError(f"endpoint of {e!r} is not a vertex", 2)
        if len(vs) > 2:
            raise ValidationError(f"edge {e!r} has {len(vs)} endpoints", 3)
    for a, b in t.incidences:
        if t.dim(a) >= t.dim(b):
            raise ValidationError(
                f"incidence ({a!r}, {b!r}) does not go up in dimension", 2
            )
    for s, v, e1, e2 in t.orientation:
        for e in (e1, e2):
            if v not in t.endpoints.get(e, ()):
                raise ValidationError(
                    f"orientation at {v!r} mentions non-incident edge {e!r}",
                    2,
                )
    # Edges must be incident to at least one and at most two faces.
    for e in t.edges:
        nf = len(t.faces_of_edge(e))
        if nf not in (1, 2):
            raise ValidationError(
                f"edge {e!r} borders {nf} faces (must be 1 or 2)", 2
            )
    # CW must be the exact reversal of CCW.
    ccw = {(v, e1, e2) for (s, v, e1, e2) in t.orientation if s == CCW}
    cw = {(v, e1, e2) for (s, v, e1, e2) in t.orientation if s == CW}
    if {(v, e2, e1) for (v, e1, e2) in ccw} != cw:
        raise ValidationError("CW is not the reversal of CCW", 4)


# ---------------------------------------------------------------------------
# Condition (3'): label sanity.
# ---------------------------------------------------------------------------

_COMPATIBLE = {
    ("o", "o"),
    ("e", "e"),
    ("b", "o"),
    ("b", "e"),
    ("b", "b"),
    ("o", "b"),
    ("e", "b"),
}


def _check_labels(t: TopologicalInvariant) -> None:
    n = len(t.names)
    for cell in t.all_cells():
        label = t.labels.get(cell)
        if label is None or len(label) != n:
            raise ValidationError(f"cell {cell!r} has a malformed label", 1)
        if not set(label) <= {"o", "b", "e"}:
            raise ValidationError(f"cell {cell!r} has invalid signs", 1)
    for v in t.vertices:
        if "b" not in t.labels[v]:
            raise ValidationError(
                f"vertex {v!r} lies on no region boundary", 1
            )
    for e in t.edges:
        if "b" not in t.labels[e]:
            raise ValidationError(f"edge {e!r} lies on no region boundary", 1)
    for f in t.faces:
        if "b" in t.labels[f]:
            raise ValidationError(
                f"face {f!r} carries a boundary sign", 1
            )
    # Local compatibility: a lower cell interior (exterior) to a region
    # forces incident higher cells to be interior-or-boundary
    # (exterior-or-boundary); strictly interior/exterior lower cells force
    # equality on incident cells of any dimension.
    for a, b in t.incidences:
        la, lb = t.labels[a], t.labels[b]
        for sa, sb in zip(la, lb):
            if sa == "o" and sb == "e":
                raise ValidationError(
                    f"incidence ({a!r}, {b!r}) mixes interior and exterior",
                    1,
                )
            if sa == "e" and sb == "o":
                raise ValidationError(
                    f"incidence ({a!r}, {b!r}) mixes exterior and interior",
                    1,
                )
            if sb == "b" and sa != "b":
                # A 1- or 2-cell on a boundary forces its closure onto it.
                raise ValidationError(
                    f"cell {b!r} is on a boundary but incident {a!r} is not",
                    1,
                )
    if "o" in t.labels[t.exterior_face] or "b" in t.labels[t.exterior_face]:
        raise ValidationError(
            "exterior face must be exterior to every region", 7
        )


# ---------------------------------------------------------------------------
# Condition (4): rotation system extraction.
# ---------------------------------------------------------------------------


def _germs_at(t: TopologicalInvariant, v: str) -> list[Dart]:
    """Darts leaving *v*: ``(e, i)`` where *i* is the index of *v* in the
    edge's (sorted) endpoint tuple — both darts for a loop at *v*."""
    germs: list[Dart] = []
    for e in sorted(t.edges_at_vertex(v)):
        eps = t.endpoints.get(e, ())
        if len(eps) == 1:
            germs.extend([(e, 0), (e, 1)])
        elif len(eps) == 2:
            germs.append((e, eps.index(v)))
    return germs


def extract_rotation_system(
    t: TopologicalInvariant,
) -> dict[str, tuple[Dart, ...]]:
    """Find, per vertex, a cyclic germ order realizing the O relation.

    Raises ValidationError (condition 4) when no cyclic arrangement of
    the germs produces exactly the CCW pair set.
    """
    rotations: dict[str, tuple[Dart, ...]] = {}
    for v in sorted(t.vertices):
        germs = _germs_at(t, v)
        want = t.orientation_at(v, CCW)
        arrangement = _find_cyclic_arrangement(germs, want)
        if arrangement is None:
            raise ValidationError(
                f"orientation at {v!r} is not a cyclic arrangement", 4
            )
        rotations[v] = arrangement
    return rotations


def _find_cyclic_arrangement(
    germs: list[Dart], want: frozenset[tuple[str, str]]
) -> tuple[Dart, ...] | None:
    """A cyclic order of *germs* whose consecutive edge pairs equal *want*."""
    if not germs:
        return () if not want else None
    if len(germs) == 1:
        (g,) = germs
        return (g,) if want == {(g[0], g[0])} else None
    first = germs[0]
    rest = germs[1:]
    for perm in itertools.permutations(rest):
        seq = (first, *perm)
        pairs = {
            (seq[i][0], seq[(i + 1) % len(seq)][0])
            for i in range(len(seq))
        }
        if pairs == want:
            return seq
    return None


# ---------------------------------------------------------------------------
# Face tracing from the rotation system.
# ---------------------------------------------------------------------------


def _dart_tail(
    t: TopologicalInvariant, dart: Dart
) -> str | None:
    """The vertex a dart leaves, or None for a free-loop dart."""
    e, occ = dart
    eps = t.endpoints.get(e, ())
    if not eps:
        return None
    if len(eps) == 1:
        return eps[0]
    return eps[occ]


def _twin(t: TopologicalInvariant, dart: Dart) -> Dart:
    e, occ = dart
    return (e, 1 - occ)


def trace_walks(
    t: TopologicalInvariant,
    rotations: dict[str, tuple[Dart, ...]],
    component: frozenset[str],
) -> list[tuple[Dart, ...]]:
    """Facial walks of one skeleton component, traced combinatorially.

    Free-loop components yield exactly two one-dart walks (a circle has
    two sides).
    """
    comp_edges = sorted(e for e in component if e in t.edges)
    if not comp_edges:
        raise ValidationError(
            f"component {sorted(component)} has no edges", 6
        )
    free = [e for e in comp_edges if not t.endpoints.get(e, ())]
    if free:
        if len(comp_edges) != 1:
            raise ValidationError(
                "free loop mixed with other edges in one component", 6
            )
        e = free[0]
        return [((e, 0),), ((e, 1),)]

    # Position of each dart in its vertex rotation.
    pos: dict[Dart, tuple[str, int]] = {}
    for v, ring in rotations.items():
        for i, d in enumerate(ring):
            if d[0] in component:
                pos[d] = (v, i)

    darts = [
        (e, occ) for e in comp_edges for occ in (0, 1)
    ]
    for d in darts:
        if d not in pos:
            raise ValidationError(
                f"dart {d!r} missing from every rotation", 4
            )

    def next_dart(d: Dart) -> Dart:
        tw = _twin(t, d)
        v, i = pos[tw]
        ring = [x for x in rotations[v] if x[0] in component]
        # Recompute position within the component-filtered ring.
        j = ring.index(tw)
        return ring[(j - 1) % len(ring)]

    walks: list[tuple[Dart, ...]] = []
    seen: set[Dart] = set()
    for start in darts:
        if start in seen:
            continue
        walk: list[Dart] = []
        d = start
        while d not in seen:
            seen.add(d)
            walk.append(d)
            d = next_dart(d)
        if d != start:
            raise ValidationError("face tracing failed to close", 5)
        walks.append(tuple(walk))
    return walks


# ---------------------------------------------------------------------------
# Conditions (5) and (6): Euler formula and walk-face assignment.
# ---------------------------------------------------------------------------


def _check_euler(t, components, walks_by_component) -> None:
    for comp, walks in zip(components, walks_by_component):
        vs = sum(1 for c in comp if c in t.vertices)
        es = sum(1 for c in comp if c in t.edges)
        free = any(
            not t.endpoints.get(c, ()) for c in comp if c in t.edges
        )
        if free:
            vs += 1  # virtual vertex on the free loop
        if vs - es + len(walks) != 2:
            raise ValidationError(
                f"component {sorted(comp)} violates Euler's formula "
                f"(V={vs}, E={es}, W={len(walks)})",
                6,
            )


def _assign_walks_to_faces(
    t: TopologicalInvariant,
    components,
    walks_by_component,
) -> tuple[dict[tuple[int, int], str], dict[int, int]]:
    """Choose an outer walk per component and a face per walk.

    Constraints: a non-outer walk is the unique *primary* walk of a
    bounded face; the exterior face has no primary; every face's
    ``Face_Edges`` equals the union of the edge sets of its walks; the
    induced component-nesting relation is a forest rooted at the exterior
    face.
    """
    n_comp = len(components)
    face_edges = {f: t.edges_of_face(f) for f in t.faces}
    walk_edges: dict[tuple[int, int], frozenset[str]] = {}
    for ci, walks in enumerate(walks_by_component):
        for wi, walk in enumerate(walks):
            walk_edges[(ci, wi)] = frozenset(d[0] for d in walk)

    total_walks = sum(len(w) for w in walks_by_component)
    if total_walks != len(t.faces) - 1 + n_comp:
        raise ValidationError(
            f"walk/face counts inconsistent: {total_walks} walks, "
            f"{len(t.faces)} faces, {n_comp} components",
            6,
        )

    bounded = sorted(t.faces - {t.exterior_face})

    # Candidate primary faces for each walk.
    candidates: dict[tuple[int, int], list[str]] = {
        key: [f for f in bounded if edges <= face_edges[f]]
        for key, edges in walk_edges.items()
    }

    assignment: dict[tuple[int, int], str] = {}
    outer: dict[int, int] = {}
    primary_of: dict[str, tuple[int, int]] = {}

    def backtrack(ci: int) -> bool:
        if ci == n_comp:
            return _place_outer_walks(
                t, components, walks_by_component, walk_edges,
                face_edges, assignment, outer, primary_of,
            )
        walks = walks_by_component[ci]
        for outer_wi in range(len(walks)):
            chosen: list[tuple[tuple[int, int], str]] = []
            ok = True
            for wi in range(len(walks)):
                if wi == outer_wi:
                    continue
                key = (ci, wi)
                placed = False
                for f in candidates[key]:
                    if f not in primary_of:
                        primary_of[f] = key
                        assignment[key] = f
                        chosen.append((key, f))
                        placed = True
                        break
                if not placed:
                    ok = False
                    break
            if ok:
                outer[ci] = outer_wi
                if backtrack(ci + 1):
                    return True
                del outer[ci]
            for key, f in chosen:
                del primary_of[f]
                del assignment[key]
        return False

    if not backtrack(0):
        raise ValidationError(
            "no consistent assignment of facial walks to faces", 5
        )
    return assignment, outer


def _place_outer_walks(
    t, components, walks_by_component, walk_edges, face_edges,
    assignment, outer, primary_of,
) -> bool:
    """Final stage: place each component's outer walk and verify coverage
    and the nesting forest."""
    if len(primary_of) != len(t.faces) - 1:
        return False
    # Tentatively place outer walks so that total coverage matches.
    remaining: dict[str, set[str]] = {}
    for f in t.faces:
        covered: set[str] = set()
        for key, face in assignment.items():
            if face == f:
                covered |= walk_edges[key]
        remaining[f] = set(face_edges[f]) - covered

    order = sorted(range(len(components)))

    def place(i: int) -> bool:
        if i == len(order):
            if any(remaining[f] for f in t.faces):
                return False
            return _nesting_is_forest(
                t, components, assignment, outer, primary_of
            )
        ci = order[i]
        key = (ci, outer[ci])
        edges = walk_edges[key]
        for f in sorted(t.faces):
            # The outer walk may not be its own component's primary face.
            pk = primary_of.get(f)
            if pk is not None and pk[0] == ci:
                continue
            if edges <= set(face_edges[f]) and edges <= remaining[f]:
                assignment[key] = f
                remaining[f] -= edges
                if place(i + 1):
                    return True
                remaining[f] |= edges
                del assignment[key]
        return False

    return place(0)


def _nesting_is_forest(t, components, assignment, outer, primary_of) -> bool:
    """Component nesting (outer walk's face's component) must be acyclic."""
    parent: dict[int, int | None] = {}
    for ci in range(len(components)):
        face = assignment[(ci, outer[ci])]
        if face == t.exterior_face:
            parent[ci] = None
            continue
        pk = primary_of.get(face)
        if pk is None:
            return False
        parent[ci] = pk[0]
    for ci in parent:
        seen = set()
        cur: int | None = ci
        while cur is not None:
            if cur in seen:
                return False
            seen.add(cur)
            cur = parent[cur]
    return True


# ---------------------------------------------------------------------------
# Condition (7): region faces in the dual graph.
# ---------------------------------------------------------------------------


def _check_region_faces(t: TopologicalInvariant) -> None:
    dual: dict[str, set[str]] = {f: set() for f in t.faces}
    for e in t.edges:
        fs = sorted(t.faces_of_edge(e))
        for i in range(len(fs)):
            for j in range(i + 1, len(fs)):
                dual[fs[i]].add(fs[j])
                dual[fs[j]].add(fs[i])

    def connected(nodes: frozenset[str]) -> bool:
        if not nodes:
            return True
        start = next(iter(sorted(nodes)))
        seen = {start}
        stack = [start]
        while stack:
            f = stack.pop()
            for g in dual[f]:
                if g in nodes and g not in seen:
                    seen.add(g)
                    stack.append(g)
        return len(seen) == len(nodes)

    for name in t.names:
        faces = t.region_faces(name)
        if not faces:
            raise ValidationError(
                f"region {name!r} has no interior face", 7
            )
        if t.exterior_face in faces:
            raise ValidationError(
                f"region {name!r} contains the exterior face", 7
            )
        if not connected(faces):
            raise ValidationError(
                f"faces of region {name!r} are not connected in the dual",
                7,
            )
        if not connected(t.faces - faces):
            raise ValidationError(
                f"complement of region {name!r} is not connected in the "
                "dual (the region has a hole)",
                7,
            )
