"""Combinatorial-map support for realization (Theorem 3.5).

The realization algorithm draws each skeleton component of an invariant
from purely combinatorial data.  This module prepares that data:

* :func:`subdivided_component` — re-express one component as a *simple*
  graph by placing two subdivision nodes on every edge (killing loops and
  parallel edges), carrying the rotation system and facial walks over;
* block (biconnected component) decomposition with the block-cut tree.

Darts of the subdivided graph are ``(tail_node, head_node)`` pairs, which
is unambiguous in a simple graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import InvariantError
from .structure import TopologicalInvariant
from .validate import Dart, ValidationWitness

__all__ = ["SimpleComponentMap", "subdivided_component"]

Node = str
SDart = tuple[Node, Node]


@dataclass
class SimpleComponentMap:
    """A simple planar map for one skeleton component.

    Attributes
    ----------
    nodes:
        All node names: original vertex ids plus subdivision nodes
        ``"<edge>#a"`` / ``"<edge>#b"``.
    rotation:
        node -> CCW-cyclic tuple of neighbour nodes.
    walks:
        Facial walks as tuples of darts ``(tail, head)``; index-aligned
        with the original witness walks of this component.
    outer_walk:
        Index of the outer walk.
    edge_of_segment:
        maps each undirected node pair (sorted tuple) to the original
        edge id it belongs to.
    node_of_vertex:
        original vertex id -> node (identity for kept vertices).
    """

    nodes: list[Node]
    rotation: dict[Node, tuple[Node, ...]]
    walks: list[tuple[SDart, ...]]
    outer_walk: int
    edge_of_segment: dict[tuple[Node, Node], str]
    node_of_vertex: dict[str, Node]
    blocks: list[frozenset[tuple[Node, Node]]] = field(default_factory=list)
    cut_nodes: set[Node] = field(default_factory=set)

    def neighbours(self, node: Node) -> tuple[Node, ...]:
        return self.rotation[node]

    def segment_nodes(self) -> list[tuple[Node, Node]]:
        return sorted(self.edge_of_segment)


def _edge_chain(edge: str, direction: int) -> list[Node]:
    """Internal node chain of a subdivided edge in dart direction.

    Direction 0 runs ``a -> b`` (endpoint order), direction 1 reverses.
    """
    a, b = f"{edge}#a", f"{edge}#b"
    return [a, b] if direction == 0 else [b, a]


def subdivided_component(
    t: TopologicalInvariant,
    witness: ValidationWitness,
    component_index: int,
) -> SimpleComponentMap:
    """Build the simple map of one component of a validated invariant."""
    component = witness.components[component_index]
    edges = sorted(e for e in component if e in t.edges)
    vertices = sorted(v for v in component if v in t.vertices)

    # Node set and segment structure.
    nodes: list[Node] = list(vertices)
    edge_of_segment: dict[tuple[Node, Node], str] = {}
    endpoints_of_edge: dict[str, tuple[Node, Node]] = {}
    for e in edges:
        eps = t.endpoints.get(e, ())
        nodes.extend([f"{e}#a", f"{e}#b"])
        if not eps:
            chain = [f"{e}#a", f"{e}#b"]
            segs = [(chain[0], chain[1]), (chain[1], chain[0])]
            # A free loop: two parallel segments would not be simple; the
            # caller must not reach this path (free loops are drawn
            # directly as squares).
            raise InvariantError(
                "free-loop components are drawn directly, not subdivided"
            )
        if len(eps) == 1:
            endpoints_of_edge[e] = (eps[0], eps[0])
        else:
            endpoints_of_edge[e] = (eps[0], eps[1])
        tail, head = endpoints_of_edge[e]
        chain = [tail, f"{e}#a", f"{e}#b", head]
        for u, v in zip(chain, chain[1:]):
            edge_of_segment[tuple(sorted((u, v)))] = e

    # Rotation: at original vertices, expand the witness rotation's darts
    # into subdivided neighbours; at subdivision nodes the rotation is the
    # trivial 2-cycle along the chain.
    rotation: dict[Node, tuple[Node, ...]] = {}
    for v in vertices:
        ring = witness.rotations[v]
        neighbours: list[Node] = []
        for (e, occ) in ring:
            if e not in component:
                raise InvariantError(
                    f"rotation at {v!r} references foreign edge {e!r}"
                )
            chain = _edge_chain(e, occ)
            neighbours.append(chain[0])
        rotation[v] = tuple(neighbours)
    for e in edges:
        tail, head = endpoints_of_edge[e]
        a, b = f"{e}#a", f"{e}#b"
        rotation[a] = (tail, b)
        rotation[b] = (a, head)

    # Walks carried onto the subdivided graph.
    walks: list[tuple[SDart, ...]] = []
    for walk in witness.walks_by_component[component_index]:
        sdarts: list[SDart] = []
        for (e, occ) in walk:
            tail, head = endpoints_of_edge[e]
            if occ == 1:
                tail, head = head, tail
            chain = [tail, *_edge_chain(e, occ), head]
            sdarts.extend(zip(chain, chain[1:]))
        walks.append(tuple(sdarts))

    smap = SimpleComponentMap(
        nodes=nodes,
        rotation=rotation,
        walks=walks,
        outer_walk=witness.outer_walk[component_index],
        edge_of_segment=edge_of_segment,
        node_of_vertex={v: v for v in vertices},
    )
    _decompose_blocks(smap)
    return smap


def _decompose_blocks(smap: SimpleComponentMap) -> None:
    """Biconnected components (as segment sets) and cut nodes.

    Iterative Hopcroft–Tarjan on the simple graph.
    """
    adj: dict[Node, list[Node]] = {n: [] for n in smap.nodes}
    for (u, v) in smap.edge_of_segment:
        adj[u].append(v)
        adj[v].append(u)

    index: dict[Node, int] = {}
    low: dict[Node, int] = {}
    counter = 0
    stack_edges: list[tuple[Node, Node]] = []
    blocks: list[frozenset[tuple[Node, Node]]] = []
    cut: set[Node] = set()

    for root in smap.nodes:
        if root in index:
            continue
        dfs: list[tuple[Node, Node | None, int]] = [(root, None, 0)]
        children_of_root = 0
        while dfs:
            node, parent, child_i = dfs.pop()
            if child_i == 0:
                index[node] = low[node] = counter
                counter += 1
            advanced = False
            neighbours = adj[node]
            while child_i < len(neighbours):
                nxt = neighbours[child_i]
                child_i += 1
                if nxt == parent:
                    # Simple graph: the unique edge to the parent is the
                    # tree edge; skip it.
                    continue
                if nxt not in index:
                    stack_edges.append(tuple(sorted((node, nxt))))
                    dfs.append((node, parent, child_i))
                    dfs.append((nxt, node, 0))
                    if node == root:
                        children_of_root += 1
                    advanced = True
                    break
                if index[nxt] < index[node]:
                    stack_edges.append(tuple(sorted((node, nxt))))
                    low[node] = min(low[node], index[nxt])
            if advanced:
                continue
            # node finished; propagate low to parent and cut blocks.
            if parent is not None:
                low[parent] = min(low[parent], low[node])
                if low[node] >= index[parent]:
                    if parent != root or children_of_root > 1:
                        cut.add(parent)
                    block: set[tuple[Node, Node]] = set()
                    key = tuple(sorted((parent, node)))
                    while stack_edges:
                        seg = stack_edges.pop()
                        block.add(seg)
                        if seg == key:
                            break
                    if block:
                        blocks.append(frozenset(block))
    smap.blocks = blocks
    smap.cut_nodes = cut
