"""Pipeline instrumentation: stage timings and cache counters.

A :class:`PipelineStats` is owned by an
:class:`~repro.pipeline.engine.InvariantPipeline` and filled from two
sides: the stage collector (per-phase wall time for arrangement build,
canonicalization, isomorphism — see :mod:`repro.instrument`) and the
cache (hit/miss counters).  All mutation is lock-guarded so the threads
backend can record concurrently.
"""

from __future__ import annotations

import threading
import time
from collections import defaultdict, deque

__all__ = ["PipelineStats"]

#: Per-endpoint latency samples retained for percentile estimation.
#: Old samples roll off so a long-lived service reports recent tail
#: behaviour rather than its whole history.
LATENCY_WINDOW = 4096


def _percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (0.0 when empty)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(q * len(ordered) + 0.5) - 1))
    return ordered[rank]


class PipelineStats:
    """Aggregated timings and counters for one pipeline."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.stage_seconds: dict[str, float] = defaultdict(float)
        self.stage_calls: dict[str, int] = defaultdict(int)
        self.counters: dict[str, int] = defaultdict(int)
        self.cache_hits = 0
        self.cache_misses = 0
        self.disk_hits = 0
        self.store_hits = 0
        self.instances_seen = 0
        self.invariants_computed = 0
        self.buckets = 0
        self.isomorphism_calls = 0
        # Process-dispatch accounting: how many cold misses travelled
        # as shared-memory array descriptors vs pickled JSON strings.
        self.dispatch_shm = 0
        self.dispatch_json = 0
        # Resilience accounting (see repro.pipeline.resilience): how
        # often the batch machinery had to retry, give up, or degrade.
        self.retries = 0
        self.timeouts = 0
        self.pool_respawns = 0
        self.victim_requeues = 0
        self.tasks_failed = 0
        self.quarantined = 0
        self.disk_write_failures = 0
        self.degradations: list[tuple[str, str]] = []
        # Service-level rollups (see repro.service): per-endpoint
        # request tallies, a rolling latency window for percentile
        # estimation, and SLO attainment against a configured target.
        self._endpoints: dict[str, dict] = {}
        # Hierarchical tracing rollup (see repro.tracing): per-span-name
        # total/self seconds aggregated over every recorded trace, plus
        # the latest trace's critical path.
        self.span_rollup: dict[str, dict] = {}
        self.critical_path: list[tuple[str, float]] = []

    # -- recording (collector-compatible) ----------------------------------

    def record_stage(self, name: str, seconds: float) -> None:
        """The :mod:`repro.instrument` collector entry point."""
        with self._lock:
            self.stage_seconds[name] += seconds
            self.stage_calls[name] += 1

    def record_counters(self, deltas: dict[str, int]) -> None:
        """Merge a :func:`repro.instrument.counter_delta` into the stats.

        The engine snapshots the kernel counters (filter hits vs exact
        fallbacks, planarize candidate pruning) around each batch and
        records the increase here.  Process-pool workers mutate their
        own interpreters' counters and are not observed, same as stages.
        """
        with self._lock:
            for name, delta in deltas.items():
                if delta:
                    self.counters[name] += delta

    def count(self, counter: str, delta: int = 1) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + delta)

    def set_gauge(self, counter: str, value: int) -> None:
        """Overwrite an attribute counter under the lock (the engine
        mirrors cache gauges like ``disk_hits`` here; a bare attribute
        assignment would race with concurrent recorders)."""
        with self._lock:
            setattr(self, counter, value)

    def record_trace(self, trace) -> None:
        """Merge a :class:`repro.tracing.Trace`'s per-stage self-time
        rollup into the stats and remember its critical path."""
        rollup = trace.self_times()
        path = [
            (span.name, span.duration or 0.0)
            for span in trace.critical_path()
        ]
        with self._lock:
            for name, cell in rollup.items():
                agg = self.span_rollup.setdefault(
                    name, {"seconds": 0.0, "self_seconds": 0.0, "calls": 0}
                )
                agg["seconds"] += cell["seconds"]
                agg["self_seconds"] += cell["self_seconds"]
                agg["calls"] += cell["calls"]
            self.critical_path = path

    # -- service rollups ----------------------------------------------------

    def _endpoint(self, endpoint: str) -> dict:
        """Fetch-or-create one endpoint cell (caller holds the lock)."""
        cell = self._endpoints.get(endpoint)
        if cell is None:
            cell = self._endpoints[endpoint] = {
                "statuses": defaultdict(int),
                "latencies": deque(maxlen=LATENCY_WINDOW),
                "first_ts": None,
                "last_ts": None,
                "slo_target": None,
                "slo_met": 0,
            }
        return cell

    def set_slo_target(self, endpoint: str, seconds: float) -> None:
        """Configure the latency SLO for one endpoint.  A request
        *attains* the SLO when it completes ``ok`` within the target;
        sheds, timeouts, and errors all count against attainment."""
        with self._lock:
            self._endpoint(endpoint)["slo_target"] = seconds

    def record_request(
        self, endpoint: str, seconds: float, status: str = "ok"
    ) -> None:
        """Record one finished service request.

        ``status`` is one of ``ok`` / ``shed`` / ``timeout`` / ``error``.
        Only ``ok`` latencies enter the percentile window — a shed
        request returns fast by design and would flatter the tail.
        """
        with self._lock:
            cell = self._endpoint(endpoint)
            cell["statuses"][status] += 1
            now = time.monotonic()
            if cell["first_ts"] is None:
                cell["first_ts"] = now
            cell["last_ts"] = now
            if status == "ok":
                cell["latencies"].append(seconds)
                target = cell["slo_target"]
                if target is None or seconds <= target:
                    cell["slo_met"] += 1

    def record_degradation(self, frm: str, to: str) -> None:
        """A backend fell back (``processes`` → ``threads`` → ``serial``)
        after exhausting its recovery budget."""
        with self._lock:
            self.degradations.append((frm, to))

    # -- reporting ----------------------------------------------------------

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "stages": {
                    name: {
                        "seconds": self.stage_seconds[name],
                        "calls": self.stage_calls[name],
                    }
                    for name in sorted(self.stage_seconds)
                },
                "counters": {
                    name: self.counters[name]
                    for name in sorted(self.counters)
                },
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "disk_hits": self.disk_hits,
                "store_hits": self.store_hits,
                "instances_seen": self.instances_seen,
                "invariants_computed": self.invariants_computed,
                "buckets": self.buckets,
                "isomorphism_calls": self.isomorphism_calls,
                "dispatch_shm": self.dispatch_shm,
                "dispatch_json": self.dispatch_json,
                "spans": {
                    name: dict(cell)
                    for name, cell in sorted(self.span_rollup.items())
                },
                "critical_path": [
                    [name, seconds] for name, seconds in self.critical_path
                ],
                "resilience": {
                    "retries": self.retries,
                    "timeouts": self.timeouts,
                    "pool_respawns": self.pool_respawns,
                    "victim_requeues": self.victim_requeues,
                    "tasks_failed": self.tasks_failed,
                    "quarantined": self.quarantined,
                    "disk_write_failures": self.disk_write_failures,
                    "degradations": [list(d) for d in self.degradations],
                },
                "service": {
                    endpoint: self._endpoint_dict(endpoint)
                    for endpoint in sorted(self._endpoints)
                },
            }

    def _endpoint_dict(self, endpoint: str) -> dict:
        """One endpoint's rollup (caller holds the lock)."""
        cell = self._endpoints[endpoint]
        statuses = dict(cell["statuses"])
        total = sum(statuses.values())
        window = list(cell["latencies"])
        elapsed = (
            (cell["last_ts"] - cell["first_ts"])
            if cell["first_ts"] is not None
            else 0.0
        )
        target = cell["slo_target"]
        return {
            "requests": total,
            "statuses": statuses,
            "p50_ms": _percentile(window, 0.50) * 1e3,
            "p99_ms": _percentile(window, 0.99) * 1e3,
            "mean_ms": (sum(window) / len(window) * 1e3) if window else 0.0,
            "throughput_rps": (total / elapsed) if elapsed > 0 else 0.0,
            "slo_target_ms": (target * 1e3) if target is not None else None,
            "slo_attainment": (cell["slo_met"] / total) if total else 1.0,
        }

    def hit_rate(self) -> float:
        """Cache hit fraction over all lookups (0.0 when none)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def kernel_filter_rate(self) -> float:
        """Fraction of geometry predicate calls the float filter
        answered without exact fallback (0.0 when none recorded)."""
        with self._lock:
            fast = (
                self.counters["kernel.orientation_fast"]
                + self.counters["kernel.intersect_fast"]
                + self.counters["kernel.intersect_bbox_reject"]
            )
            exact = (
                self.counters["kernel.orientation_exact"]
                + self.counters["kernel.intersect_exact"]
            )
        total = fast + exact
        return fast / total if total else 0.0

    def summary(self) -> str:
        """A compact human-readable report (benchmarks print this)."""
        data = self.as_dict()
        lines = [
            f"instances={data['instances_seen']} "
            f"computed={data['invariants_computed']} "
            f"cache: {data['cache_hits']} hits / "
            f"{data['cache_misses']} misses "
            f"({self.hit_rate():.0%} hit rate, "
            f"{data['disk_hits']} from disk, "
            f"{data['store_hits']} from store)",
            f"equivalence: {data['buckets']} buckets, "
            f"{data['isomorphism_calls']} isomorphism searches",
        ]
        res = data["resilience"]
        if any(v for v in res.values()):
            chain = "".join(
                f" {frm}→{to}" for frm, to in res["degradations"]
            )
            lines.append(
                f"resilience: {res['retries']} retries, "
                f"{res['timeouts']} timeouts, "
                f"{res['pool_respawns']} pool respawns, "
                f"{res['victim_requeues']} victim requeues, "
                f"{res['tasks_failed']} failed; "
                f"cache: {res['quarantined']} quarantined, "
                f"{res['disk_write_failures']} write failures"
                + (f"; degraded{chain}" if chain else "")
            )
        for endpoint, cell in data["service"].items():
            if not cell["requests"]:
                continue
            slo = (
                f", SLO {cell['slo_attainment']:.1%} "
                f"of {cell['slo_target_ms']:.0f}ms"
                if cell["slo_target_ms"] is not None
                else ""
            )
            lines.append(
                f"service {endpoint}: {cell['requests']} requests "
                f"({', '.join(f'{n} {s}' for s, n in sorted(cell['statuses'].items()))}), "
                f"p50 {cell['p50_ms']:.1f}ms / p99 {cell['p99_ms']:.1f}ms, "
                f"{cell['throughput_rps']:.0f} rps{slo}"
            )
        if data["counters"]:
            tested = data["counters"].get("kernel.planarize_pairs_tested", 0)
            pruned = data["counters"].get("kernel.planarize_pairs_pruned", 0)
            lines.append(
                f"kernel: {self.kernel_filter_rate():.0%} filter hit rate, "
                f"planarize pairs {tested} tested / {pruned} y-pruned"
            )
        if any(name.startswith("query.") for name in data["counters"]):
            qc = data["counters"]
            lines.append(
                "query: "
                f"{qc.get('query.regions_enumerated', 0)} regions "
                f"({qc.get('query.universe_hits', 0)} universe hits / "
                f"{qc.get('query.universe_misses', 0)} misses), "
                f"memo {qc.get('query.memo_hits', 0)} hits / "
                f"{qc.get('query.memo_misses', 0)} misses, "
                f"{qc.get('query.atoms_evaluated', 0)} atoms, "
                f"{qc.get('query.candidates_pruned', 0)} candidates pruned"
            )
        for name, cell in data["stages"].items():
            lines.append(
                f"  {name}: {cell['seconds']:.3f}s / {cell['calls']} calls"
            )
        if data["critical_path"]:
            chain = " > ".join(
                f"{name} {seconds * 1e3:.1f}ms"
                for name, seconds in data["critical_path"][:6]
            )
            lines.append(f"critical path: {chain}")
        if data["spans"]:
            top = sorted(
                data["spans"].items(),
                key=lambda kv: kv[1]["self_seconds"],
                reverse=True,
            )[:5]
            lines.append(
                "span self-time: "
                + ", ".join(
                    f"{name} {cell['self_seconds'] * 1e3:.1f}ms"
                    f"/{cell['calls']}"
                    for name, cell in top
                )
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PipelineStats({self.as_dict()!r})"
