"""Content-addressed invariant caches.

Keys are :func:`repro.invariant.canonical.instance_key` digests — a pure
function of instance geometry — so a cache can never serve a wrong
invariant: equal keys imply identical regions, and the invariant is a
function of the regions.

Two layers compose:

* an in-memory **LRU** (an ``OrderedDict`` under a lock), bounded by
  ``maxsize`` entries;
* an optional **on-disk** layer: one JSON file per key (written
  atomically via rename), so warm corpora survive process restarts and
  benchmark runs skip recomputation entirely.

Disk entries are long-lived artifacts whose integrity is *verified*,
not assumed: each file is a versioned envelope
``{"v": 1, "sha256": <hex digest of payload>, "payload": <encoded>}``.
On read the checksum is recomputed; a mismatch (bit rot, torn write,
hostile edit) — or a checksum-valid payload the decoder rejects — moves
the file into ``disk_dir/quarantine/`` for post-mortem inspection and
counts as a miss, so the value is simply recomputed.  Legacy
unversioned entries (raw payload text from before the envelope) still
read fine; files that parse as neither are a silent miss (their
provenance is unknown).  Disk *writes* that fail with :class:`OSError`
(read-only or full disk) are tolerated: the entry stays in memory and
the ``disk_write_failures`` counter ticks.

Invalidation needs no timestamps: a key changes whenever the geometry
changes, and stale entries for geometries never seen again simply age
out of the LRU (disk entries are inert files that may be deleted at any
time).

The value type defaults to :class:`~repro.invariant.TopologicalInvariant`
with the :mod:`repro.io` JSON codec, but any content-addressed artifact
can ride the same machinery by passing ``encode``/``decode`` — the
compiled query engine stores its disc-region universes this way, keyed
by ``instance_key`` plus the enumeration parameters.

A third tier can sit behind (or, with ``store_primary``, in front of)
the per-key JSON files: a :class:`~repro.store.SegmentStore` holding
binary invariant records in mmap'd segments.  The store tier only
engages for the default invariant codec — custom ``encode``/``decode``
artifacts are not segment records — and is write-through on ``put``.
:meth:`migrate` walks the disk directory once, rewriting legacy
pre-envelope entries as checksummed envelopes and (when a store is
attached) copying every readable entry into the segment store.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable

from .. import faults

__all__ = ["InvariantCache", "ENVELOPE_VERSION"]

ENVELOPE_VERSION = 1

# Our envelope serializer puts "v" first, so a file beginning with this
# prefix that fails to parse is one of ours that got torn or corrupted
# (quarantine it), not a foreign file (silent miss).
_ENVELOPE_PREFIX = '{"v":'


def _checksum(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class InvariantCache:
    """LRU + optional disk cache mapping content keys to artifacts.

    ``encode``/``decode`` translate values to and from the JSON text
    stored by the disk layer; when omitted, values are invariants and
    the :mod:`repro.io` invariant codec is used.
    """

    def __init__(
        self,
        maxsize: int = 1024,
        disk_dir: str | os.PathLike | None = None,
        encode: Callable[[Any], str] | None = None,
        decode: Callable[[str], Any] | None = None,
        store=None,
        store_primary: bool = False,
    ):
        if maxsize < 1:
            raise ValueError("cache maxsize must be positive")
        self.maxsize = maxsize
        self._encode = encode
        self._decode = decode
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        if self.disk_dir is not None:
            self.disk_dir.mkdir(parents=True, exist_ok=True)
        # The segment-store tier carries invariants only: custom codecs
        # write artifacts the store's record format does not model.
        self.store = store if (encode is None and decode is None) else None
        self.store_primary = store_primary and self.store is not None
        self._lock = threading.Lock()
        self._memory: OrderedDict[str, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.store_hits = 0
        self.evictions = 0
        self.quarantined = 0
        self.disk_write_failures = 0
        self.store_write_failures = 0
        self.legacy_reads = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def get(self, key: str) -> Any | None:
        """The cached artifact for *key*, or None.

        Memory first, then the persistent tiers — segment store before
        the per-key files when ``store_primary``, after them otherwise.
        Any persistent hit is promoted into memory.
        """
        with self._lock:
            hit = self._memory.get(key)
            if hit is not None:
                self._memory.move_to_end(key)
                self.hits += 1
                return hit
        from_store = False
        if self.store_primary:
            loaded = self._load_store(key)
            from_store = loaded is not None
            if loaded is None:
                loaded = self._load_disk(key)
        else:
            loaded = self._load_disk(key)
            if loaded is None:
                loaded = self._load_store(key)
                from_store = loaded is not None
        with self._lock:
            if loaded is not None:
                self.hits += 1
                if from_store:
                    self.store_hits += 1
                else:
                    self.disk_hits += 1
                self._store_memory(key, loaded)
            else:
                self.misses += 1
        return loaded

    def put(self, key: str, value: Any) -> None:
        with self._lock:
            self._store_memory(key, value)
        if self.disk_dir is not None:
            self._store_disk(key, value)
        if self.store is not None:
            try:
                self.store.put(key, value)
            except Exception:
                # A torn/poisoned segment must not fail the batch any
                # more than a full disk does.
                with self._lock:
                    self.store_write_failures += 1

    def clear(self, disk: bool = False) -> None:
        """Drop the memory layer (and the disk layer when *disk*)."""
        with self._lock:
            self._memory.clear()
        if disk and self.disk_dir is not None:
            for path in self.disk_dir.glob("*.json"):
                path.unlink(missing_ok=True)

    # -- internals ----------------------------------------------------------

    def _store_memory(self, key: str, value: Any) -> None:
        self._memory[key] = value
        self._memory.move_to_end(key)
        while len(self._memory) > self.maxsize:
            self._memory.popitem(last=False)
            self.evictions += 1

    def _path(self, key: str) -> Path:
        assert self.disk_dir is not None
        return self.disk_dir / f"{key}.json"

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside (never re-served, kept for
        inspection) and count it.  Deleting is the fallback when even
        the move fails — the one unacceptable outcome is re-reading the
        corrupt bytes forever."""
        assert self.disk_dir is not None
        qdir = self.disk_dir / "quarantine"
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(path, qdir / path.name)
        except OSError:
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
        with self._lock:
            self.quarantined += 1

    def _load_disk(self, key: str) -> Any | None:
        if self.disk_dir is None:
            return None
        path = self._path(key)
        try:
            text = path.read_text()
        except OSError:
            return None
        decode = self._decode
        if decode is None:
            from ..io import invariant_from_json as decode

        envelope = None
        try:
            data = json.loads(text)
            if (
                isinstance(data, dict)
                and data.get("v") == ENVELOPE_VERSION
                and isinstance(data.get("sha256"), str)
                and isinstance(data.get("payload"), str)
            ):
                envelope = data
        except ValueError:
            if text.startswith(_ENVELOPE_PREFIX):
                # One of our envelopes, torn or bit-flipped into
                # unparseable JSON.
                self._quarantine(path)
                return None
        if envelope is not None:
            payload = envelope["payload"]
            if _checksum(payload) != envelope["sha256"]:
                self._quarantine(path)
                return None
            try:
                return decode(payload)
            except Exception:
                # Checksum-valid but rotten content: the encoder wrote
                # garbage.  Quarantine rather than re-reading forever.
                self._quarantine(path)
                return None
        # Legacy unversioned entry (raw payload text) or foreign file:
        # decode directly; failures are a miss, not an error.
        try:
            value = decode(text)
        except Exception:
            return None
        with self._lock:
            self.legacy_reads += 1
        return value

    def _load_store(self, key: str) -> Any | None:
        if self.store is None:
            return None
        try:
            return self.store.get(key)
        except Exception:
            return None

    def migrate(self, store=None) -> dict[str, int]:
        """One pass over the disk directory: rewrite every legacy
        (pre-envelope) entry as a checksummed envelope, and copy every
        readable entry into *store* (default: the attached segment
        store, if any).  Returns ``{"scanned", "rewritten", "copied"}``.

        Envelope rewriting works for any codec; the store copy only
        happens in default invariant mode (see the class docstring).
        """
        if store is None:
            store = self.store
        scanned = rewritten = copied = 0
        if self.disk_dir is None:
            return {"scanned": 0, "rewritten": 0, "copied": 0}
        decode = self._decode
        if decode is None:
            from ..io import invariant_from_json as decode
        for path in sorted(self.disk_dir.glob("*.json")):
            scanned += 1
            key = path.stem
            try:
                text = path.read_text()
            except OSError:
                continue
            payload = None
            try:
                data = json.loads(text)
                if (
                    isinstance(data, dict)
                    and data.get("v") == ENVELOPE_VERSION
                    and isinstance(data.get("sha256"), str)
                    and isinstance(data.get("payload"), str)
                    and _checksum(data["payload"]) == data["sha256"]
                ):
                    payload = data["payload"]
            except ValueError:
                pass
            legacy = payload is None
            if legacy:
                payload = text
            try:
                value = decode(payload)
            except Exception:
                continue  # the read path will quarantine or miss
            if legacy:
                self._store_disk(key, value)
                rewritten += 1
            if store is not None and self._decode is None:
                try:
                    store.put(key, value)
                    copied += 1
                except Exception:
                    with self._lock:
                        self.store_write_failures += 1
        return {
            "scanned": scanned,
            "rewritten": rewritten,
            "copied": copied,
        }

    def _store_disk(self, key: str, value: Any) -> None:
        encode = self._encode
        if encode is None:
            from ..io import invariant_to_json as encode

        payload = encode(value)
        if faults.draw("encode_garbage", key) is not None:
            payload = '{"rotten": tru'  # undecodable on read
        path = self._path(key)
        tmp = path.with_suffix(f".tmp-{os.getpid()}-{threading.get_ident()}")
        try:
            tmp.write_text(
                json.dumps(
                    {
                        "v": ENVELOPE_VERSION,
                        "sha256": _checksum(payload),
                        "payload": payload,
                    }
                )
            )
            os.replace(tmp, path)
            if faults.draw("cache_bitflip", key) is not None:
                data = bytearray(path.read_bytes())
                data[len(data) // 2] ^= 0x20
                path.write_bytes(data)
        except OSError:
            # Read-only or full disk: keep serving from memory and say
            # so in the counters instead of failing the batch.
            with self._lock:
                self.disk_write_failures += 1
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
