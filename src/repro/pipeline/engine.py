"""The batch invariant-computation engine.

An :class:`InvariantPipeline` turns a corpus of
:class:`~repro.regions.SpatialInstance` objects into their invariants
``T_I`` with three orthogonal accelerations:

* **content-addressed caching** — instances are keyed by
  :func:`~repro.invariant.canonical.instance_key` (a pure function of
  geometry), so repeated corpora, duplicated instances inside one batch,
  and re-runs against a disk cache all skip recomputation;
* **parallel computation** — the cold misses of a batch are mapped over
  a worker pool (``serial`` / ``threads`` / ``processes``); the process
  backend ships instances as JSON (exact rationals survive the trip) and
  is the one that scales on multi-core machines, since invariant
  computation is pure Python and GIL-bound;
* **hash-bucketed equivalence** — :meth:`equivalence_groups` buckets
  invariants by their complete canonical hash and runs the backtracking
  isomorphism search only within buckets, so the quadratic pairwise
  comparison collapses to bucket-local verification.

Stage timings (arrangement build, canonicalization, isomorphism) and
cache counters are exposed through :attr:`InvariantPipeline.stats`.
Process-pool workers run in separate interpreters; their internal stage
breakdown is not observed (their wall time still shows up in the
benchmark totals).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Iterable, Sequence

from ..errors import PipelineError
from ..instrument import collecting, counter_delta, counter_snapshot
from ..invariant import (
    TopologicalInvariant,
    find_isomorphism,
    invariant,
)
from ..invariant.canonical import canonical_hash, instance_key
from ..regions import SpatialInstance
from .cache import InvariantCache
from .stats import PipelineStats

__all__ = [
    "InvariantPipeline",
    "topologically_equivalent_batch",
    "BACKENDS",
]

BACKENDS = ("serial", "threads", "processes")


def _compute_invariant_json(instance_json: str) -> str:
    """Process-pool worker: JSON instance in, JSON invariant out."""
    from ..io import instance_from_json, invariant_to_json

    return invariant_to_json(invariant(instance_from_json(instance_json)))


class InvariantPipeline:
    """Cached, parallel computation of invariants over instance corpora.

    Parameters
    ----------
    backend:
        ``"serial"`` (default), ``"threads"``, or ``"processes"``.
    workers:
        Pool size for the parallel backends (default: CPU count).
    cache:
        An :class:`InvariantCache` to share between pipelines, or None to
        create a private one.
    cache_size / disk_cache_dir:
        Configuration for the private cache when *cache* is None.
    """

    def __init__(
        self,
        backend: str = "serial",
        workers: int | None = None,
        cache: InvariantCache | None = None,
        cache_size: int = 1024,
        disk_cache_dir: str | os.PathLike | None = None,
    ):
        if backend not in BACKENDS:
            raise PipelineError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        self.backend = backend
        self.workers = workers or os.cpu_count() or 1
        # `cache or ...` would discard an injected empty cache (len 0 is
        # falsy), silently breaking sharing across pipelines.
        self.cache = (
            cache
            if cache is not None
            else InvariantCache(maxsize=cache_size, disk_dir=disk_cache_dir)
        )
        self.stats = PipelineStats()
        self._pool: ProcessPoolExecutor | None = None

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Shut down the persistent process pool (if one was started).

        The pipeline remains usable afterwards — the next processes
        batch starts a fresh pool."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "InvariantPipeline":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _process_pool(self) -> ProcessPoolExecutor:
        # Lazily created and kept for the pipeline's lifetime: repeated
        # small batches would otherwise pay interpreter startup per call.
        if self._pool is None:
            self._pool = ProcessPoolExecutor(self.workers)
        return self._pool

    # -- single instance ----------------------------------------------------

    def compute(self, instance: SpatialInstance) -> TopologicalInvariant:
        """The invariant of one instance, through the cache."""
        return self.compute_batch([instance])[0]

    # -- batch --------------------------------------------------------------

    def compute_batch(
        self, instances: Sequence[SpatialInstance]
    ) -> list[TopologicalInvariant]:
        """Invariants of *instances*, in order.

        Duplicate geometries inside the batch are computed once; cached
        geometries are not computed at all; the remaining misses go to
        the worker pool.
        """
        instances = list(instances)
        self.stats.count("instances_seen", len(instances))
        # Kernel counters (filter hits / exact fallbacks / planarize
        # pruning) are monotone module globals; the batch records its
        # increase.  Threads-backend increments land here too; process
        # workers count in their own interpreters, same caveat as stages.
        kernel_before = counter_snapshot()
        try:
            with collecting(self.stats.record_stage):
                keys = [instance_key(inst) for inst in instances]
                resolved: dict[str, TopologicalInvariant] = {}
                misses: dict[str, SpatialInstance] = {}
                for key, inst in zip(keys, instances):
                    if key in resolved or key in misses:
                        self.stats.count("cache_hits")
                        continue
                    hit = self.cache.get(key)
                    if hit is not None:
                        self.stats.count("cache_hits")
                        resolved[key] = hit
                    else:
                        self.stats.count("cache_misses")
                        misses[key] = inst
                if misses:
                    computed = self._map_invariants(list(misses.values()))
                    self.stats.count("invariants_computed", len(computed))
                    for key, t in zip(misses, computed):
                        self.cache.put(key, t)
                        resolved[key] = t
                self.stats.disk_hits = self.cache.disk_hits
        finally:
            self.stats.record_counters(
                counter_delta(kernel_before, counter_snapshot())
            )
        return [resolved[key] for key in keys]

    def _map_invariants(
        self, instances: list[SpatialInstance]
    ) -> list[TopologicalInvariant]:
        if self.backend == "serial" or len(instances) == 1:
            return [invariant(inst) for inst in instances]
        if self.backend == "threads":
            with ThreadPoolExecutor(self.workers) as pool:
                return list(pool.map(invariant, instances))
        return self._map_processes(instances)

    def _map_processes(
        self, instances: list[SpatialInstance]
    ) -> list[TopologicalInvariant]:
        from ..io import instance_to_json, invariant_from_json

        payloads = [instance_to_json(inst) for inst in instances]
        pool = self._process_pool()
        results = list(
            pool.map(
                _compute_invariant_json,
                payloads,
                chunksize=max(1, len(payloads) // (4 * self.workers)),
            )
        )
        return [invariant_from_json(text) for text in results]

    # -- equivalence --------------------------------------------------------

    def equivalence_groups(
        self, instances: Sequence[SpatialInstance]
    ) -> list[list[int]]:
        """Partition indices of *instances* into H-equivalence classes.

        Invariants are bucketed by canonical hash first; the backtracking
        isomorphism search runs only within a bucket, as a verification
        of the hash decision (a mismatch would be a canonization bug and
        raises).
        """
        invariants = self.compute_batch(instances)
        with collecting(self.stats.record_stage):
            buckets: dict[str, list[int]] = {}
            for i, t in enumerate(invariants):
                buckets.setdefault(canonical_hash(t), []).append(i)
            self.stats.count("buckets", len(buckets))
            groups: list[list[int]] = []
            for key in sorted(buckets):
                members = buckets[key]
                rep = invariants[members[0]]
                for i in members[1:]:
                    self.stats.count("isomorphism_calls")
                    if find_isomorphism(invariants[i], rep) is None:
                        raise PipelineError(
                            "canonical hash collision without isomorphism"
                            f" (bucket {key[:12]}…): canonization bug"
                        )
                groups.append(list(members))
        return groups


def topologically_equivalent_batch(
    instances: Iterable[SpatialInstance],
    pipeline: InvariantPipeline | None = None,
) -> list[list[int]]:
    """H-equivalence classes of *instances* as index groups.

    Every pair of indices inside one group is topologically equivalent
    (Theorem 3.4); indices in different groups are not.  A throwaway
    serial pipeline is used unless one is supplied.
    """
    pipeline = pipeline or InvariantPipeline()
    return pipeline.equivalence_groups(list(instances))
