"""The batch invariant-computation engine.

An :class:`InvariantPipeline` turns a corpus of
:class:`~repro.regions.SpatialInstance` objects into their invariants
``T_I`` with three orthogonal accelerations:

* **content-addressed caching** — instances are keyed by
  :func:`~repro.invariant.canonical.instance_key` (a pure function of
  geometry), so repeated corpora, duplicated instances inside one batch,
  and re-runs against a disk cache all skip recomputation;
* **parallel computation** — the cold misses of a batch are mapped over
  a worker pool (``serial`` / ``threads`` / ``processes``); the process
  backend ships closed-form instances through a per-batch shared-memory
  arena (:mod:`repro.pipeline.shm` — each task's pickled message is a
  ``(name, offset, size)`` descriptor, the coordinates travel as one
  int64 array read zero-copy in the worker) with a per-instance JSON
  fallback for regions the array codec cannot carry (exact rationals
  survive either trip), and is the backend that scales on multi-core
  machines, since invariant computation is pure Python and GIL-bound;
* **hash-bucketed equivalence** — :meth:`equivalence_groups` buckets
  invariants by their complete canonical hash and runs the backtracking
  isomorphism search only within buckets, so the quadratic pairwise
  comparison collapses to bucket-local verification.

Execution is **fault tolerant** (see :mod:`repro.pipeline.resilience`):
every instance gets its own outcome, transient failures are retried
with deterministic backoff, a broken process pool is respawned a
bounded number of times and then degraded ``processes → threads →
serial``, and pooled tasks can carry a per-task timeout.  With
``on_error="raise"`` (the default) a persistent failure raises a
:class:`~repro.errors.ComputeError` naming the instance key — but only
after every sibling finished and was cached, so nothing is lost; the
``"skip"`` and ``"collect"`` modes return a
:class:`~repro.pipeline.resilience.BatchResult` instead of raising.

Stage timings (arrangement build, canonicalization, isomorphism),
cache and recovery counters are exposed through
:attr:`InvariantPipeline.stats`.  Process-pool workers run in separate
interpreters; their internal stage breakdown is not observed (their
wall time still shows up in the benchmark totals).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Iterable, Sequence

from .. import faults, tracing
from ..errors import PipelineError
from ..instrument import collecting, counter_delta, counter_snapshot
from ..invariant import (
    TopologicalInvariant,
    find_isomorphism,
    invariant,
)
from ..invariant.canonical import canonical_hash, instance_key
from ..regions import SpatialInstance
from .cache import InvariantCache
from .resilience import (
    ON_ERROR_MODES,
    BatchResult,
    ExecutorRunner,
    Outcome,
    ResilientMapper,
    RetryPolicy,
    SerialRunner,
)
from .stats import PipelineStats

__all__ = [
    "InvariantPipeline",
    "topologically_equivalent_batch",
    "BACKENDS",
    "DISPATCH_MODES",
]

BACKENDS = ("serial", "threads", "processes")
DISPATCH_MODES = ("arrays", "json")


def _teardown_process_pool(pool: ProcessPoolExecutor) -> None:
    """Shut a process pool down without waiting on its workers.

    ``shutdown(wait=False)`` alone leaves a hung or abandoned worker
    running until it finishes on its own (a timed-out task could linger
    for minutes), so the workers are terminated explicitly and reaped.
    """
    # Grab the workers before shutdown() — it clears ``_processes``.
    procs = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in procs:
        try:
            proc.terminate()
        except Exception:
            pass
    for proc in procs:
        try:
            proc.join(timeout=5)
        except Exception:
            pass


def _invariant_task(args: tuple):
    """Process-pool worker: ``(key, payload, drawn fault, trace?)`` in,
    invariant JSON out.  The payload is either ``("json", text)`` or a
    ``("shm", name, offset, size)`` descriptor of a window in the
    batch's shared-memory arena (see :mod:`repro.pipeline.shm`), which
    is decoded zero-copy in place.  The fault decision was drawn by the
    parent at submit time (deterministic schedules survive the process
    hop).  When the parent is tracing, the spans recorded in this
    interpreter are captured and piggybacked on the result for
    re-parenting."""
    key, payload, fault, traced = args
    from ..io import invariant_to_json

    with tracing.capture(force=traced) as cap:
        faults.execute_in_worker(fault, key)
        if payload[0] == "shm":
            from ..io import instance_from_buffer
            from .shm import read_task_payload

            window = read_task_payload(*payload[1:])
            try:
                inst = instance_from_buffer(window)
            finally:
                window.release()
        else:
            from ..io import instance_from_json

            inst = instance_from_json(payload[1])
        value = invariant_to_json(invariant(inst))
    return tracing.pack_result(value, cap)


class InvariantPipeline:
    """Cached, parallel, fault-tolerant computation of invariants over
    instance corpora.

    Parameters
    ----------
    backend:
        ``"serial"`` (default), ``"threads"``, or ``"processes"``.
    workers:
        Pool size for the parallel backends (default: CPU count).
    cache:
        An :class:`InvariantCache` to share between pipelines, or None to
        create a private one.
    cache_size / disk_cache_dir:
        Configuration for the private cache when *cache* is None.
    store / store_primary:
        A :class:`~repro.store.SegmentStore` to attach as the private
        cache's persistent tier (behind the per-key files by default,
        in front of them with ``store_primary=True``).  Ignored when an
        explicit *cache* is passed — configure that cache directly.
    retry:
        A :class:`~repro.pipeline.resilience.RetryPolicy`, or None for
        the default (3 attempts, capped exponential backoff with
        deterministic jitter).
    task_timeout:
        Per-task deadline in seconds for the pooled backends, or None
        (no deadline).  An overdue process task is charged a
        :class:`~repro.errors.TimeoutError` and the pool is recycled;
        thread tasks are observed cooperatively.  The serial backend
        runs inline and enforces no preemption.
    max_pool_respawns:
        How many times a broken pool is respawned per batch before the
        remaining tasks degrade to the next backend in the chain.
    dispatch:
        How the process backend ships instances to workers:
        ``"arrays"`` (default) packs closed-form instances into a
        shared-memory arena and sends ``(name, offset, size)``
        descriptors (instances the array codec cannot carry fall back
        to JSON per instance); ``"json"`` forces the seed behaviour of
        pickling a JSON string per task.  Results are identical either
        way; only transfer cost differs.
    """

    def __init__(
        self,
        backend: str = "serial",
        workers: int | None = None,
        cache: InvariantCache | None = None,
        cache_size: int = 1024,
        disk_cache_dir: str | os.PathLike | None = None,
        retry: RetryPolicy | None = None,
        task_timeout: float | None = None,
        max_pool_respawns: int = 2,
        dispatch: str = "arrays",
        store=None,
        store_primary: bool = False,
    ):
        if backend not in BACKENDS:
            raise PipelineError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        if dispatch not in DISPATCH_MODES:
            raise PipelineError(
                f"unknown dispatch {dispatch!r}; "
                f"expected one of {DISPATCH_MODES}"
            )
        self.dispatch = dispatch
        self.backend = backend
        self.workers = workers or os.cpu_count() or 1
        # `cache or ...` would discard an injected empty cache (len 0 is
        # falsy), silently breaking sharing across pipelines.
        self.cache = (
            cache
            if cache is not None
            else InvariantCache(
                maxsize=cache_size,
                disk_dir=disk_cache_dir,
                store=store,
                store_primary=store_primary,
            )
        )
        self.retry = retry if retry is not None else RetryPolicy()
        self.task_timeout = task_timeout
        self.max_pool_respawns = max_pool_respawns
        self.stats = PipelineStats()
        self.last_trace: tracing.Trace | None = None
        self._pool: ProcessPoolExecutor | None = None
        self._thread_pool: ThreadPoolExecutor | None = None

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Shut down the persistent worker pools (if any were started).

        The pipeline remains usable afterwards — the next parallel
        batch starts a fresh pool."""
        if self._pool is not None:
            # Not a graceful shutdown(wait=True): the pool may hold a
            # hung or broken worker that would block (or outlive) us.
            # Workers are idle between batches, so terminating is safe.
            _teardown_process_pool(self._pool)
            self._pool = None
        if self._thread_pool is not None:
            self._thread_pool.shutdown()
            self._thread_pool = None

    def __enter__(self) -> "InvariantPipeline":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _process_pool(self) -> ProcessPoolExecutor:
        # Lazily created and kept for the pipeline's lifetime: repeated
        # small batches would otherwise pay interpreter startup per call.
        if self._pool is None:
            self._pool = ProcessPoolExecutor(self.workers)
        return self._pool

    def _threads(self) -> ThreadPoolExecutor:
        # Persistent like the process pool — a throwaway executor per
        # batch would pay thread startup on every call.
        if self._thread_pool is None:
            self._thread_pool = ThreadPoolExecutor(self.workers)
        return self._thread_pool

    def _respawn_processes(self) -> None:
        # Replace a broken pool: kill the corpse (its workers are dead
        # or hung; nothing worth waiting for) and start fresh.
        if self._pool is not None:
            _teardown_process_pool(self._pool)
        self._pool = ProcessPoolExecutor(self.workers)

    def _respawn_threads(self) -> None:
        if self._thread_pool is not None:
            self._thread_pool.shutdown(wait=False, cancel_futures=True)
        self._thread_pool = ThreadPoolExecutor(self.workers)

    # -- single instance ----------------------------------------------------

    def compute(self, instance: SpatialInstance) -> TopologicalInvariant:
        """The invariant of one instance, through the cache."""
        return self.compute_batch([instance])[0]

    # -- batch --------------------------------------------------------------

    def compute_batch(
        self,
        instances: Sequence[SpatialInstance],
        on_error: str = "raise",
        trace: "bool | tracing.Tracer | None" = None,
        keys: "Sequence[str] | None" = None,
    ) -> list[TopologicalInvariant] | BatchResult:
        """Invariants of *instances*, in order.

        Duplicate geometries inside the batch are computed once; cached
        geometries are not computed at all; the remaining misses go to
        the worker pool with per-instance fault isolation.

        *on_error* selects the failure semantics:

        * ``"raise"`` (default) — return a plain list; a persistent
          per-instance failure raises its
          :class:`~repro.errors.ComputeError` after every sibling has
          been computed and cached;
        * ``"skip"`` — return a :class:`BatchResult` iterating over the
          successful invariants only;
        * ``"collect"`` — return a :class:`BatchResult` iterating over
          per-input :class:`~repro.pipeline.resilience.Outcome`
          objects (ok or failed, aligned with the inputs).

        *trace* selects hierarchical tracing (:mod:`repro.tracing`):

        * ``None`` (default) — no tracer is installed by the batch, but
          an externally installed one observes it;
        * ``True`` — the batch runs under a private tracer; the finished
          :class:`~repro.tracing.Trace` lands at :attr:`last_trace` and
          its self-time rollup is merged into :attr:`stats`;
        * a :class:`~repro.tracing.Tracer` — the batch runs under it;
          the caller owns and finishes it.

        Spans recorded inside workers — including process-pool workers —
        are captured in the worker and re-parented under the submitting
        task's span.  Tracing never changes results (the differential
        suite in ``tests/test_tracing.py`` holds the pipeline to that).

        *keys* optionally supplies the instances' content keys
        (aligned with *instances*), skipping re-derivation when the
        caller already holds them — the shard workers route by key, so
        every batch arrives pre-keyed.  The keys are trusted; passing
        a key that is not ``instance_key(inst)`` corrupts the
        content-addressed cache.
        """
        if on_error not in ON_ERROR_MODES:
            raise PipelineError(
                f"unknown on_error mode {on_error!r}; "
                f"expected one of {ON_ERROR_MODES}"
            )
        owned: tracing.Tracer | None = None
        if trace is True:
            owned = tracer = tracing.Tracer(capture_counters=True)
        elif isinstance(trace, tracing.Tracer):
            tracer = trace
        elif trace in (None, False):
            tracer = None
        else:
            raise PipelineError(
                "trace must be None, True, or a repro.tracing.Tracer"
            )
        try:
            if tracer is not None:
                tracing.install(tracer)
            return self._compute_batch_inner(instances, on_error, keys)
        finally:
            if tracer is not None:
                tracing.uninstall(tracer)
            if owned is not None:
                self.last_trace = owned.finish(backend=self.backend)
                self.stats.record_trace(self.last_trace)

    def _compute_batch_inner(
        self,
        instances: Sequence[SpatialInstance],
        on_error: str,
        precomputed_keys: "Sequence[str] | None" = None,
    ) -> list[TopologicalInvariant] | BatchResult:
        instances = list(instances)
        if precomputed_keys is not None:
            precomputed_keys = list(precomputed_keys)
            if len(precomputed_keys) != len(instances):
                raise PipelineError(
                    f"keys length {len(precomputed_keys)} does not match "
                    f"{len(instances)} instances"
                )
        self.stats.count("instances_seen", len(instances))
        # Kernel counters (filter hits / exact fallbacks / planarize
        # pruning) are monotone module globals; the batch records its
        # increase.  Threads-backend increments land here too; process
        # workers count in their own interpreters, same caveat as the
        # flat stage timings (the span tree does observe workers).
        kernel_before = counter_snapshot()
        failures: dict[str, Outcome] = {}
        computed_outcomes: dict[str, Outcome] = {}
        try:
            with collecting(self.stats.record_stage), tracing.span(
                "pipeline.compute_batch",
                backend=self.backend,
                instances=len(instances),
            ):
                with tracing.span("pipeline.resolve"):
                    keys = (
                        precomputed_keys
                        if precomputed_keys is not None
                        else [instance_key(inst) for inst in instances]
                    )
                    resolved: dict[str, TopologicalInvariant] = {}
                    misses: dict[str, SpatialInstance] = {}
                    for key, inst in zip(keys, instances):
                        if key in resolved or key in misses:
                            self.stats.count("cache_hits")
                            continue
                        hit = self.cache.get(key)
                        if hit is not None:
                            self.stats.count("cache_hits")
                            resolved[key] = hit
                        else:
                            self.stats.count("cache_misses")
                            misses[key] = inst
                if misses:
                    with tracing.span("pipeline.map", misses=len(misses)):
                        outcomes = self._map_invariants(misses)
                    computed = 0
                    for key in misses:
                        out = outcomes[key]
                        computed_outcomes[key] = out
                        if out.ok:
                            computed += 1
                            self.cache.put(key, out.value)
                            resolved[key] = out.value
                        else:
                            failures[key] = out
                    self.stats.count("invariants_computed", computed)
                self.stats.set_gauge("disk_hits", self.cache.disk_hits)
                self.stats.set_gauge("store_hits", self.cache.store_hits)
                self.stats.set_gauge("quarantined", self.cache.quarantined)
                self.stats.set_gauge(
                    "disk_write_failures", self.cache.disk_write_failures
                )
        finally:
            self.stats.record_counters(
                counter_delta(kernel_before, counter_snapshot())
            )
        if on_error == "raise":
            for key in keys:
                if key in failures:
                    raise failures[key].error
            return [resolved[key] for key in keys]
        ordered = [
            computed_outcomes[key]
            if key in computed_outcomes
            else Outcome.success(key, resolved[key], 0)
            for key in keys
        ]
        return BatchResult(ordered, mode=on_error)

    def _map_invariants(
        self, misses: dict[str, SpatialInstance]
    ) -> dict[str, Outcome]:
        """Per-key outcomes for the batch's cold misses, via the
        resilient mapper over this pipeline's backend chain."""
        if self.backend == "serial" or len(misses) == 1:
            chain = ["serial"]
        elif self.backend == "threads":
            chain = ["threads", "serial"]
        else:
            chain = ["processes", "threads", "serial"]

        def run_inline(key: str, fault: dict | None):
            # Spans recorded by the task (arrangement build, canonize…)
            # are captured per-thread and re-parented by the mapper
            # under the submitting task's span — the same piggyback
            # protocol the process workers use.
            with tracing.capture() as cap:
                faults.execute_inline(fault, key)
                value = invariant(misses[key])
            return tracing.pack_result(value, cap)

        runners: dict[str, object] = {"serial": SerialRunner(run_inline)}
        if "threads" in chain:
            runners["threads"] = ExecutorRunner(
                "threads",
                submit=lambda key, fault: self._threads().submit(
                    run_inline, key, fault
                ),
                respawn=self._respawn_threads,
            )
        shm_batch = None
        if "processes" in chain:
            from ..io import instance_to_json, invariant_from_json

            payloads: dict[str, tuple] = {}
            if self.dispatch == "arrays":
                from ..io import instance_to_buffer
                from .shm import ShmBatch

                blobs: dict[str, bytes] = {}
                for key, inst in misses.items():
                    blob = instance_to_buffer(inst)
                    if blob is not None:
                        blobs[key] = blob
                if blobs:
                    shm_batch = ShmBatch.create(blobs)
                    for key in blobs:
                        payloads[key] = ("shm", *shm_batch.descriptor(key))
                self.stats.count("dispatch_shm", len(blobs))
            json_keys = [key for key in misses if key not in payloads]
            self.stats.count("dispatch_json", len(json_keys))
            for key in json_keys:
                payloads[key] = ("json", instance_to_json(misses[key]))
            # Drawn in the parent at submit time, like the fault payload:
            # the worker interpreter cannot see the parent's tracer.
            traced = tracing.current_tracer() is not None
            runners["processes"] = ExecutorRunner(
                "processes",
                submit=lambda key, fault: self._process_pool().submit(
                    _invariant_task, (key, payloads[key], fault, traced)
                ),
                respawn=self._respawn_processes,
                decode=invariant_from_json,
                respawn_on_timeout=True,
            )
        mapper = ResilientMapper(
            runners,
            chain,
            self.retry,
            self.stats,
            workers=self.workers,
            task_timeout=self.task_timeout,
            max_pool_respawns=self.max_pool_respawns,
        )
        try:
            return mapper.run(list(misses))
        finally:
            # Workers that already mapped the arena keep reading after
            # the unlink; nothing retries a descriptor past this point
            # because the mapper has fully drained the batch.
            if shm_batch is not None:
                shm_batch.close()

    # -- equivalence --------------------------------------------------------

    def equivalence_groups(
        self, instances: Sequence[SpatialInstance]
    ) -> list[list[int]]:
        """Partition indices of *instances* into H-equivalence classes.

        Invariants are bucketed by canonical hash first; the backtracking
        isomorphism search runs only within a bucket, as a verification
        of the hash decision (a mismatch would be a canonization bug and
        raises).
        """
        invariants = self.compute_batch(instances)
        with collecting(self.stats.record_stage), tracing.span(
            "pipeline.equivalence", instances=len(instances)
        ):
            buckets: dict[str, list[int]] = {}
            for i, t in enumerate(invariants):
                buckets.setdefault(canonical_hash(t), []).append(i)
            self.stats.count("buckets", len(buckets))
            groups: list[list[int]] = []
            for key in sorted(buckets):
                members = buckets[key]
                rep = invariants[members[0]]
                for i in members[1:]:
                    self.stats.count("isomorphism_calls")
                    if find_isomorphism(invariants[i], rep) is None:
                        raise PipelineError(
                            "canonical hash collision without isomorphism"
                            f" (bucket {key[:12]}…): canonization bug"
                        )
                groups.append(list(members))
        return groups


def topologically_equivalent_batch(
    instances: Iterable[SpatialInstance],
    pipeline: InvariantPipeline | None = None,
) -> list[list[int]]:
    """H-equivalence classes of *instances* as index groups.

    Every pair of indices inside one group is topologically equivalent
    (Theorem 3.4); indices in different groups are not.  A throwaway
    serial pipeline is used unless one is supplied.
    """
    pipeline = pipeline or InvariantPipeline()
    return pipeline.equivalence_groups(list(instances))
