"""Fault-tolerant task execution for the batch pipeline.

The engine's worker backends used to be all-or-nothing: one degenerate
instance, one dead process worker, or one hung task aborted the entire
``compute_batch`` and threw away every sibling result.  This module
supplies the recovery machinery the engine threads through instead:

* **per-task isolation** — every instance key gets its own
  :class:`Outcome` (``ok`` with a value, or ``failed`` with the wrapped
  exception, a formatted traceback, and the attempt count), collected
  into a :class:`BatchResult`;
* **retry with capped exponential backoff** — transient failures
  (worker death, timeouts, injected faults) are retried up to
  :attr:`RetryPolicy.max_attempts` times with *deterministic* jitter:
  the delay is a pure function of ``(seed, key, attempt)`` via SHA-256,
  so tests never depend on wall-clock randomness, and the sleep itself
  is injectable;
* **pool recovery and degradation** — a broken process pool is
  respawned a bounded number of times; when the budget is exhausted the
  remaining tasks degrade down the backend chain
  (``processes → threads → serial``), with every transition recorded in
  :class:`~repro.pipeline.stats.PipelineStats`;
* **per-task timeouts** — pooled tasks carry a deadline; an overdue
  process task is charged a :class:`~repro.errors.TimeoutError` and the
  pool (whose worker is still occupied) is recycled.  Thread tasks are
  observed cooperatively: the timeout is charged but the worker thread
  is left to drain on its own (threads cannot be killed).  The serial
  backend runs inline and enforces no preemption.

Worker-side faults (:mod:`repro.faults`) are drawn by the parent at
submit time, so the injected schedule stays deterministic even across
process-pool workers.

Attempt accounting under pool breakage is *deterministic*: worker
death is not attributable to a single task, so every task that observed
the break — the one whose future raised, the ones still in flight, and
the ones queued behind them — is a victim: its submit-time attempt is
refunded and it is requeued free of charge (tallied as
``victim_requeues``).  What bounds a persistently breaking pool is the
respawn budget, not the victims' retry budgets: once
``max_pool_respawns`` is spent the remaining tasks degrade down the
chain to the inline backends, where a crash *is* attributable to the
task that raised it and is charged normally.  Which futures happened to
land in the ``wait()`` done-set at break time therefore never changes
any task's attempt count.  ``max_attempts`` is a total across backends
— a task that burned two attempts before a degradation has one left
after it.
"""

from __future__ import annotations

import hashlib
import time
import traceback as _tb
from collections import deque
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, Future, wait
from time import monotonic
from typing import Any, Callable, Iterator, Sequence

from .. import faults, tracing
from ..errors import ComputeError, PipelineError, WorkerError
from ..errors import TimeoutError as TaskTimeoutError
from ..faults import InjectedFailure

__all__ = [
    "RetryPolicy",
    "Outcome",
    "BatchResult",
    "SerialRunner",
    "ExecutorRunner",
    "ResilientMapper",
]

ON_ERROR_MODES = ("raise", "skip", "collect")

# Exception classes worth a second attempt: infrastructure failures and
# the injected transient-failure marker.  Deterministic library errors
# (a degenerate instance raising GeometryError, say) fail fast — the
# computation is pure, so retrying them is pure waste.
DEFAULT_RETRYABLE = (
    WorkerError,
    TaskTimeoutError,
    BrokenExecutor,
    OSError,
    MemoryError,
    InjectedFailure,
)


class RetryPolicy:
    """Bounded retries with capped exponential backoff and
    deterministic jitter.

    The delay before attempt ``n``'s retry is
    ``min(cap, base * 2**(n-1))`` scaled by a jitter factor in
    ``[1 - jitter, 1 + jitter]`` derived from
    ``sha256(seed, key, attempt)`` — a pure function, so schedules are
    reproducible.  *sleep* is injectable (tests pass a recorder)."""

    def __init__(
        self,
        max_attempts: int = 3,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        jitter: float = 0.25,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
        retryable: tuple[type[BaseException], ...] | None = None,
    ):
        if max_attempts < 1:
            raise PipelineError("max_attempts must be at least 1")
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.jitter = jitter
        self.seed = seed
        self.sleep = sleep
        self.retryable = (
            retryable if retryable is not None else DEFAULT_RETRYABLE
        )

    def should_retry(self, exc: BaseException, attempts: int) -> bool:
        return attempts < self.max_attempts and isinstance(
            exc, self.retryable
        )

    def delay(self, key: str, attempt: int) -> float:
        """The backoff before retrying *key* after its *attempt*-th try
        (pure — no clock, no global RNG)."""
        base = min(self.backoff_cap, self.backoff_base * 2 ** (attempt - 1))
        digest = hashlib.sha256(
            f"{self.seed}:{key}:{attempt}".encode()
        ).digest()
        unit = int.from_bytes(digest[:8], "big") / 2**64  # [0, 1)
        return base * (1.0 + self.jitter * (2.0 * unit - 1.0))

    def backoff(self, key: str, attempt: int) -> float:
        d = self.delay(key, attempt)
        if d > 0:
            self.sleep(d)
        return d


class Outcome:
    """The per-key result of a resilient map: ``ok`` with a value, or
    ``failed`` with a :class:`~repro.errors.ComputeError` (original
    exception chained as ``__cause__``), the formatted traceback, and
    the attempt count."""

    __slots__ = ("key", "value", "error", "traceback", "attempts")

    def __init__(self, key, value, error, traceback, attempts):
        self.key = key
        self.value = value
        self.error = error
        self.traceback = traceback
        self.attempts = attempts

    @property
    def ok(self) -> bool:
        return self.error is None

    @classmethod
    def success(cls, key: str, value: Any, attempts: int) -> "Outcome":
        return cls(key, value, None, None, attempts)

    @classmethod
    def failure(
        cls, key: str, exc: BaseException, attempts: int, stage: str
    ) -> "Outcome":
        tb = "".join(_tb.format_exception(type(exc), exc, exc.__traceback__))
        if isinstance(exc, ComputeError):
            error = exc
            error.key = error.key or key
            error.stage = error.stage or stage
            error.attempts = attempts
        else:
            error = ComputeError(
                f"computing {key} failed after {attempts} attempt(s): "
                f"{type(exc).__name__}: {exc}",
                key=key,
                stage=stage,
                attempts=attempts,
            )
            error.__cause__ = exc
        return cls(key, None, error, tb, attempts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "ok" if self.ok else f"failed({self.error})"
        return f"Outcome({self.key[:12]}…, {state}, attempts={self.attempts})"


class BatchResult:
    """Ordered per-instance outcomes of a ``compute_batch`` call.

    :attr:`outcomes` is always aligned with the input sequence
    (duplicate geometries share one underlying result).  The sequence
    behaviour depends on the ``on_error`` mode that produced it:

    * ``"skip"`` — iteration/indexing run over the *successful*
      invariants only (failures are dropped, best-effort semantics);
    * ``"collect"`` — iteration/indexing run over the per-input
      :class:`Outcome` objects, so callers can ``zip`` with the inputs.
    """

    def __init__(self, outcomes: Sequence[Outcome], mode: str = "collect"):
        if mode not in ("skip", "collect"):
            raise PipelineError(
                f"unknown BatchResult mode {mode!r}; "
                "expected 'skip' or 'collect'"
            )
        self.outcomes = list(outcomes)
        self.mode = mode

    @property
    def ok(self) -> bool:
        """True when every instance computed successfully."""
        return all(o.ok for o in self.outcomes)

    def invariants(self) -> list:
        """The successful values, in input order (failures dropped)."""
        return [o.value for o in self.outcomes if o.ok]

    def failures(self) -> list[Outcome]:
        """The failed outcomes, in input order."""
        return [o for o in self.outcomes if not o.ok]

    def strict(self) -> list:
        """All values in input order, raising the first failure."""
        for o in self.outcomes:
            if not o.ok:
                raise o.error
        return [o.value for o in self.outcomes]

    def _seq(self) -> list:
        if self.mode == "skip":
            return self.invariants()
        return self.outcomes

    def __len__(self) -> int:
        return len(self._seq())

    def __iter__(self) -> Iterator:
        return iter(self._seq())

    def __getitem__(self, index):
        return self._seq()[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        failed = len(self.failures())
        return (
            f"BatchResult({len(self.outcomes)} instances, {failed} failed,"
            f" mode={self.mode!r})"
        )


# -- backend runners ----------------------------------------------------------


class SerialRunner:
    """Inline execution: *run* is ``(key, fault_payload) -> value``."""

    name = "serial"

    def __init__(self, run: Callable[[str, dict | None], Any]):
        self.run = run


class ExecutorRunner:
    """A pooled backend: *submit* is ``(key, fault_payload) -> Future``,
    *respawn* replaces a broken pool (None means the pool cannot be
    replaced), *decode* post-processes a successful future result in
    the parent (the process backend's JSON decode), and
    *respawn_on_timeout* says whether an overdue task leaves the pool
    unusable (true for processes: the worker is still occupied)."""

    def __init__(
        self,
        name: str,
        submit: Callable[[str, dict | None], Future],
        respawn: Callable[[], None] | None = None,
        decode: Callable[[Any], Any] | None = None,
        respawn_on_timeout: bool = False,
    ):
        self.name = name
        self.submit = submit
        self.respawn = respawn
        self.decode = decode
        self.respawn_on_timeout = respawn_on_timeout


class ResilientMapper:
    """Maps keyed tasks over a chain of backends with retry, timeout,
    pool respawn, and degradation.

    *runners* maps backend names to :class:`SerialRunner` /
    :class:`ExecutorRunner`; *chain* orders them strongest-first and
    must end with a serial runner (which cannot fail as a pool).  The
    mapper owns no pools — the engine does — so pool lifetime stays
    with the pipeline."""

    def __init__(
        self,
        runners: dict[str, object],
        chain: Sequence[str],
        policy: RetryPolicy,
        stats,
        workers: int = 1,
        task_timeout: float | None = None,
        max_pool_respawns: int = 2,
    ):
        self.runners = runners
        self.chain = list(chain)
        self.policy = policy
        self.stats = stats
        self.workers = max(1, workers)
        self.task_timeout = task_timeout
        self.max_pool_respawns = max_pool_respawns

    # -- fault drawing -------------------------------------------------------

    @staticmethod
    def _draw_worker_fault(key: str) -> dict | None:
        for point in faults.WORKER_POINTS:
            payload = faults.draw(point, key)
            if payload is not None:
                return payload
        return None

    # -- top level -----------------------------------------------------------

    def run(self, keys: Sequence[str]) -> dict[str, Outcome]:
        """Outcomes for every key (each appears exactly once)."""
        outcomes: dict[str, Outcome] = {}
        attempts = {key: 0 for key in keys}
        pending = list(keys)
        for i, backend in enumerate(self.chain):
            if not pending:
                break
            runner = self.runners[backend]
            if isinstance(runner, SerialRunner):
                self._run_serial(runner, pending, attempts, outcomes)
                pending = []
            else:
                pending = self._run_pool(runner, pending, attempts, outcomes)
            if pending:
                if i + 1 >= len(self.chain):  # pragma: no cover - guarded
                    raise PipelineError(
                        "backend chain exhausted with tasks pending"
                    )
                self.stats.record_degradation(backend, self.chain[i + 1])
                tracing.add_event(
                    "degradation",
                    frm=backend,
                    to=self.chain[i + 1],
                    pending=len(pending),
                )
        return outcomes

    # -- serial --------------------------------------------------------------

    @staticmethod
    def _task_span(tracer, key: str, backend: str, attempt: int):
        if tracer is None:
            return None
        return tracer.start_span(
            "task",
            attributes={
                "instance_key": key,
                "backend": backend,
                "attempt": attempt,
            },
        )

    @staticmethod
    def _settle_span(tracer, span, value, event: str | None = None, **attrs):
        """Finish a task span: re-parent piggybacked worker spans under
        it and stamp a terminal event.  Returns the unpacked value."""
        value, worker_spans = tracing.unpack_result(value)
        if span is not None:
            if worker_spans:
                tracer.adopt(span, worker_spans)
            if event is not None:
                tracer.add_event(event, span=span, **attrs)
            tracer.finish_span(span)
        return value

    def _run_serial(self, runner, keys, attempts, outcomes) -> None:
        tracer = tracing.current_tracer()
        for key in keys:
            while True:
                attempts[key] += 1
                fault = self._draw_worker_fault(key)
                span = self._task_span(
                    tracer, key, runner.name, attempts[key]
                )
                try:
                    value = runner.run(key, fault)
                except Exception as exc:
                    self._settle_span(
                        tracer, span, None,
                        event="error", error=type(exc).__name__,
                    )
                    if self._settle_failed(
                        key, exc, attempts, None, outcomes, runner.name
                    ):
                        continue
                    break
                else:
                    value = self._settle_span(tracer, span, value)
                    outcomes[key] = Outcome.success(key, value, attempts[key])
                    break

    # -- pooled --------------------------------------------------------------

    def _settle_failed(
        self, key, exc, attempts, queue, outcomes, stage
    ) -> bool:
        """Retry *key* (True) or record its failure (False)."""
        if self.policy.should_retry(exc, attempts[key]):
            self.stats.count("retries")
            tracing.add_event(
                "retry",
                key=key,
                attempt=attempts[key],
                error=type(exc).__name__,
            )
            self.policy.backoff(key, attempts[key])
            if queue is not None:
                queue.append(key)
            return True
        outcomes[key] = Outcome.failure(key, exc, attempts[key], stage)
        self.stats.count("tasks_failed")
        return False

    def _run_pool(self, runner, pending, attempts, outcomes) -> list[str]:
        """Run *pending* on a pooled runner.  Returns the keys to hand
        down the chain when the pool's respawn budget runs out."""
        tracer = tracing.current_tracer()
        queue: deque[str] = deque(pending)
        inflight: dict[Future, tuple[str, float | None, object]] = {}
        respawns = 0

        def requeue_victim(key: str) -> None:
            # Pool breakage is unattributable, so its observers are
            # victims: refund the submit-time attempt and requeue.
            attempts[key] -= 1
            queue.append(key)
            self.stats.count("victim_requeues")

        while queue or inflight:
            broken = False

            # Saturate the pool (deadlines start at submit, so keep the
            # backlog at pool width: a queued-behind task must not burn
            # its budget waiting for a worker).
            while queue and len(inflight) < self.workers:
                key = queue.popleft()
                attempts[key] += 1
                fault = self._draw_worker_fault(key)
                try:
                    fut = runner.submit(key, fault)
                except (BrokenExecutor, RuntimeError):
                    # The pool died before accepting the task.
                    requeue_victim(key)
                    broken = True
                    break
                deadline = (
                    monotonic() + self.task_timeout
                    if self.task_timeout is not None
                    else None
                )
                inflight[fut] = (
                    key,
                    deadline,
                    self._task_span(tracer, key, runner.name, attempts[key]),
                )

            if inflight and not broken:
                deadlines = [
                    d for (_k, d, _s) in inflight.values() if d is not None
                ]
                wait_for = (
                    max(0.0, min(deadlines) - monotonic())
                    if deadlines
                    else None
                )
                done, _ = wait(
                    set(inflight),
                    timeout=wait_for,
                    return_when=FIRST_COMPLETED,
                )
                for fut in done:
                    key, _d, span = inflight.pop(fut)
                    worker_spans = None
                    try:
                        value = fut.result()
                        value, worker_spans = tracing.unpack_result(value)
                        if runner.decode is not None:
                            value = runner.decode(value)
                    except BrokenExecutor:
                        # Worker death is unattributable: the task whose
                        # future observed the break is a victim exactly
                        # like its queued siblings.  Charging it would
                        # make attempt counts depend on which futures
                        # happened to land in this done-set.
                        self._settle_span(
                            tracer, span, None, event="worker_crash"
                        )
                        requeue_victim(key)
                        broken = True
                    except Exception as exc:
                        if span is not None and worker_spans:
                            tracer.adopt(span, worker_spans)
                        self._settle_span(
                            tracer, span, None,
                            event="error", error=type(exc).__name__,
                        )
                        self._settle_failed(
                            key, exc, attempts, queue, outcomes, runner.name
                        )
                    else:
                        if span is not None and worker_spans:
                            tracer.adopt(span, worker_spans)
                        self._settle_span(tracer, span, None)
                        outcomes[key] = Outcome.success(
                            key, value, attempts[key]
                        )
                # Deadline sweep: charge overdue tasks a timeout.
                if self.task_timeout is not None:
                    now = monotonic()
                    overdue = [
                        f
                        for f, (_k, d, _s) in inflight.items()
                        if d is not None and d <= now
                    ]
                    for fut in overdue:
                        key, _d, span = inflight.pop(fut)
                        fut.cancel()
                        self.stats.count("timeouts")
                        self._settle_span(
                            tracer, span, None,
                            event="timeout", seconds=self.task_timeout,
                        )
                        exc = TaskTimeoutError(
                            f"task {key} exceeded its "
                            f"{self.task_timeout}s timeout",
                            key=key,
                            stage=runner.name,
                            attempts=attempts[key],
                        )
                        self._settle_failed(
                            key, exc, attempts, queue, outcomes, runner.name
                        )
                        if runner.respawn_on_timeout:
                            # The worker is still grinding on the
                            # abandoned task: recycle the pool.
                            broken = True

            if broken:
                # Tasks still in flight in the dead pool are victims
                # like the observer that detected the break: requeue
                # them without charging an attempt.
                for fut in list(inflight):
                    key, _d, span = inflight.pop(fut)
                    fut.cancel()
                    self._settle_span(
                        tracer, span, None, event="victim_requeued"
                    )
                    requeue_victim(key)
                if (
                    runner.respawn is None
                    or respawns >= self.max_pool_respawns
                ):
                    return list(queue)
                respawns += 1
                self.stats.count("pool_respawns")
                tracing.add_event(
                    "pool_respawn",
                    backend=runner.name,
                    respawn=respawns,
                )
                runner.respawn()
        return []
