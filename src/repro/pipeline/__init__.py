"""Batch invariant computation: caching, worker pools, bucketed
equivalence (the production-scale serving layer over Section 3).

Quickstart::

    from repro.datasets import mixed_corpus
    from repro.pipeline import InvariantPipeline

    pipe = InvariantPipeline(backend="processes", workers=4)
    invariants = pipe.compute_batch(mixed_corpus(100, seed=1))
    groups = pipe.equivalence_groups(mixed_corpus(100, seed=1))
    print(pipe.stats.summary())
"""

from .cache import InvariantCache
from .engine import (
    BACKENDS,
    InvariantPipeline,
    topologically_equivalent_batch,
)
from .resilience import BatchResult, Outcome, RetryPolicy
from .stats import PipelineStats

__all__ = [
    "BACKENDS",
    "BatchResult",
    "InvariantCache",
    "InvariantPipeline",
    "Outcome",
    "PipelineStats",
    "RetryPolicy",
    "topologically_equivalent_batch",
]
