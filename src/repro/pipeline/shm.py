"""Shared-memory transport for process-pool task payloads.

The process backend used to pickle a JSON string per task through the
executor's call pipe.  Here the parent packs every encodable payload of
a batch into **one** :class:`multiprocessing.shared_memory.SharedMemory`
arena and sends each worker only a ``(segment name, offset, size)``
descriptor — a few dozen bytes through the pipe regardless of payload
size.  The worker maps the segment once, keeps the mapping across tasks
of the batch, and reads its window zero-copy as a ``memoryview``.

Lifecycle: the parent owns the segment and unlinks it as soon as the
batch's map completes (``finally``-guarded, so a failed batch cannot
leak ``/dev/shm`` entries).  On Linux an unlinked segment stays valid
for processes that already mapped it, and a worker killed mid-read
releases its mapping with the process — there is no cleanup path that
depends on worker cooperation.

CPython 3.11's :class:`SharedMemory` registers *attachments* with the
``resource_tracker`` as if they were owned segments (the ``track=False``
escape hatch only lands in 3.13).  That is harmless here: pool workers
inherit the parent's tracker process (both fork and spawn pass the
tracker fd down), so a worker attach re-registers a name the tracker
already holds — an idempotent no-op on the tracker's name set — and the
parent's unlink removes it exactly once.  Workers must *not* unregister
the name themselves: with a shared tracker that would strip the
parent's registration and turn the parent's unlink into a tracker-side
``KeyError``, and lose crash cleanup in the window before unlink.
"""

from __future__ import annotations

from multiprocessing import shared_memory

__all__ = ["ShmBatch", "read_task_payload"]

# Blob starts are 8-byte aligned so int64 views inside a window stay
# aligned no matter where the window lands in the arena.
_ALIGN = 8


def _aligned(n: int) -> int:
    return n + (-n % _ALIGN)


class ShmBatch:
    """One batch's payloads packed into a single shared-memory arena."""

    __slots__ = ("shm", "_windows", "_closed")

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        windows: dict[str, tuple[int, int]],
    ):
        self.shm = shm
        self._windows = windows
        self._closed = False

    @classmethod
    def create(cls, blobs: dict[str, bytes]) -> "ShmBatch":
        """Pack *blobs* (key → encoded payload) into a fresh arena."""
        total = sum(_aligned(len(b)) for b in blobs.values())
        shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
        windows: dict[str, tuple[int, int]] = {}
        pos = 0
        for key, blob in blobs.items():
            size = len(blob)
            shm.buf[pos : pos + size] = blob
            windows[key] = (pos, size)
            pos += _aligned(size)
        return cls(shm, windows)

    def descriptor(self, key: str) -> tuple[str, int, int]:
        """The ``(segment name, offset, size)`` triple for one payload —
        the whole cross-process message for that task."""
        offset, size = self._windows[key]
        return (self.shm.name, offset, size)

    @property
    def nbytes(self) -> int:
        """Arena size in bytes (payloads plus alignment padding)."""
        return self.shm.size

    def close(self) -> None:
        """Unmap and unlink the arena.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - exported view leak
            pass
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __enter__(self) -> "ShmBatch":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# Worker-side attachment cache: one mapping per segment, reused across
# every task of a batch (and replaced when the next batch arrives).
_attached: tuple[str, shared_memory.SharedMemory] | None = None


def read_task_payload(name: str, offset: int, size: int) -> memoryview:
    """A worker's zero-copy view of its payload window.

    Maps the segment on first use and caches the mapping; subsequent
    tasks of the same batch only slice.  The returned ``memoryview``
    aliases shared pages — consume it before the parent's batch ends
    (task execution is inside the batch by construction).
    """
    global _attached
    if _attached is None or _attached[0] != name:
        if _attached is not None:
            try:
                _attached[1].close()
            except BufferError:  # pragma: no cover - stale view export
                pass
        # Attaching re-registers the name with the shared resource
        # tracker; idempotent, and cleared by the parent's unlink.
        _attached = (name, shared_memory.SharedMemory(name=name))
    return _attached[1].buf[offset : offset + size]
