"""Lightweight stage instrumentation for the hot paths.

The arrangement builder, the invariant canonizer, and the isomorphism
search wrap their phases in :func:`stage`.  With no collector installed
the wrapper is a no-op apart from one truthiness check, so library users
pay nothing; the batch pipeline installs a collector around its work and
aggregates the timings into its :class:`~repro.pipeline.PipelineStats`.

Collectors are plain callables ``(stage_name, seconds) -> None`` held in
a module-level registry guarded by a lock (the threads backend records
from worker threads).  A collector that raises is skipped for that
stage — a broken observer must not poison the observed computation or
the registry.

On top of the flat collectors sits the hierarchical tracing layer of
:mod:`repro.tracing`: when a tracer is installed, every ``stage()``
block additionally opens a span (keyword arguments to :func:`stage`
become span attributes; collectors ignore them).  Spans recorded inside
process-pool workers are captured in the child interpreter and
re-parented in the submitting pipeline — see :mod:`repro.tracing` for
the cross-process story that closes the old "workers are not observed"
blind spot.

Alongside the stage timers this module aggregates *counter sources*:
zero-argument callables returning a ``{name: int}`` snapshot of
monotonically increasing counters (the fast geometry kernel registers
its filter-hit/exact-fallback counters here at import).  Consumers take
a :func:`counter_snapshot` before and after a unit of work and diff the
two — that keeps the hot paths free of any per-call indirection.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Callable, Iterator

__all__ = [
    "stage",
    "add_collector",
    "remove_collector",
    "collecting",
    "add_counter_source",
    "remove_counter_source",
    "counter_snapshot",
    "counter_delta",
    "Deadline",
]

Collector = Callable[[str, float], None]
CounterSource = Callable[[], dict[str, int]]


class Deadline:
    """A cooperative time budget for long enumerations.

    Loops that cannot be preempted (universe enumeration in the
    compiled query engine runs in-process) instead poll an explicit
    deadline at their natural checkpoints, exactly as they poll their
    size budgets.  ``Deadline(seconds)`` starts the clock immediately;
    ``check(what)`` raises :class:`repro.errors.TimeoutError` once the
    budget is spent.  ``Deadline(None)`` never expires, so call sites
    need no conditional.

    The clock source is injectable for tests (pass ``clock=`` a callable
    returning monotonic seconds) — expiry can then be simulated without
    sleeping.
    """

    __slots__ = ("seconds", "_clock", "_t0")

    def __init__(
        self,
        seconds: float | None,
        clock: Callable[[], float] = perf_counter,
    ):
        if seconds is not None and seconds <= 0:
            raise ValueError("deadline must be positive (or None)")
        self.seconds = seconds
        self._clock = clock
        self._t0 = clock()

    def expired(self) -> bool:
        if self.seconds is None:
            return False
        return self._clock() - self._t0 >= self.seconds

    def remaining(self) -> float | None:
        """Seconds left, or None for an unbounded deadline."""
        if self.seconds is None:
            return None
        return max(0.0, self.seconds - (self._clock() - self._t0))

    def check(self, what: str = "operation") -> None:
        """Raise :class:`repro.errors.TimeoutError` when expired."""
        if self.expired():
            from .errors import TimeoutError

            raise TimeoutError(
                f"{what} exceeded its {self.seconds:g}s time budget",
                stage=what,
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Deadline({self.seconds!r})"

_lock = threading.Lock()
_collectors: list[Collector] = []
_counter_sources: list[CounterSource] = []

# Hierarchical tracing hook (set up by repro.tracing, which this module
# must not import at module level — tracing imports the counter API from
# here).  ``_trace_refs`` counts active tracers; ``stage()`` only looks
# up the current tracer when it is non-zero, so the tracing-off path
# stays two truthiness checks.
_trace_refs = 0
_trace_get: Callable[[], object] | None = None


def _trace_ref(delta: int) -> None:
    """Adjust the active-tracer count (called by :mod:`repro.tracing`)."""
    global _trace_refs, _trace_get
    with _lock:
        if _trace_get is None:
            from .tracing import current_tracer

            _trace_get = current_tracer
        _trace_refs += delta


def add_counter_source(source: CounterSource) -> None:
    """Register a ``() -> {name: int}`` snapshot callable."""
    with _lock:
        _counter_sources.append(source)


def remove_counter_source(source: CounterSource) -> None:
    """Unregister a counter source previously added (no error if absent)."""
    with _lock:
        try:
            _counter_sources.remove(source)
        except ValueError:
            pass


def counter_snapshot() -> dict[str, int]:
    """Merged snapshot of every registered counter source."""
    with _lock:
        sources = list(_counter_sources)
    merged: dict[str, int] = {}
    for source in sources:
        merged.update(source())
    return merged


def counter_delta(
    before: dict[str, int], after: dict[str, int]
) -> dict[str, int]:
    """Per-counter increase between two snapshots (new counters count
    from zero).

    Counters are monotone within one source's lifetime, but a source can
    be *replaced* mid-interval — a process-pool respawn installs fresh
    workers whose counters restart at zero — which would make the naive
    difference negative and corrupt every rate derived from it.  A
    negative difference is therefore clamped to 0 and tallied in the
    returned ``counters_reset`` entry instead, so consumers can see that
    an interval lost data without ever seeing a negative rate.
    """
    delta: dict[str, int] = {}
    resets = 0
    for name, value in after.items():
        d = value - before.get(name, 0)
        if d < 0:
            resets += 1
            d = 0
        delta[name] = d
    if resets:
        delta["counters_reset"] = delta.get("counters_reset", 0) + resets
    return delta


def add_collector(collector: Collector) -> None:
    """Register a ``(stage_name, seconds)`` callback."""
    with _lock:
        _collectors.append(collector)


def remove_collector(collector: Collector) -> None:
    """Unregister a callback previously added (no error if absent)."""
    with _lock:
        try:
            _collectors.remove(collector)
        except ValueError:
            pass


@contextmanager
def collecting(collector: Collector) -> Iterator[None]:
    """Scoped registration: install *collector* for the block."""
    add_collector(collector)
    try:
        yield
    finally:
        remove_collector(collector)


@contextmanager
def stage(name: str, **attributes) -> Iterator[None]:
    """Time the block as *name* if any collector or tracer is installed.

    Keyword arguments become span attributes when a tracer is active
    (:mod:`repro.tracing`); flat collectors see only ``(name, dt)``.
    With neither installed the block costs two truthiness checks.
    """
    tracer = _trace_get() if _trace_refs else None
    if not _collectors and tracer is None:
        yield
        return
    span = (
        tracer.start_span(name, push=True, attributes=attributes)
        if tracer is not None
        else None
    )
    t0 = perf_counter()
    try:
        yield
    finally:
        dt = perf_counter() - t0
        if span is not None:
            tracer.finish_span(span)
        if _collectors:
            with _lock:
                active = list(_collectors)
            for collector in active:
                try:
                    collector(name, dt)
                except Exception:
                    # A broken observer must not fail the observed
                    # computation (or starve the collectors after it).
                    pass
