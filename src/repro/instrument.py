"""Lightweight stage instrumentation for the hot paths.

The arrangement builder, the invariant canonizer, and the isomorphism
search wrap their phases in :func:`stage`.  With no collector installed
the wrapper is a no-op apart from one truthiness check, so library users
pay nothing; the batch pipeline installs a collector around its work and
aggregates the timings into its :class:`~repro.pipeline.PipelineStats`.

Collectors are plain callables ``(stage_name, seconds) -> None`` held in
a module-level registry guarded by a lock (the threads backend records
from worker threads).  Process-pool workers run in separate interpreters
and are therefore not observed — the pipeline documents this.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Callable, Iterator

__all__ = ["stage", "add_collector", "remove_collector", "collecting"]

Collector = Callable[[str, float], None]

_lock = threading.Lock()
_collectors: list[Collector] = []


def add_collector(collector: Collector) -> None:
    """Register a ``(stage_name, seconds)`` callback."""
    with _lock:
        _collectors.append(collector)


def remove_collector(collector: Collector) -> None:
    """Unregister a callback previously added (no error if absent)."""
    with _lock:
        try:
            _collectors.remove(collector)
        except ValueError:
            pass


@contextmanager
def collecting(collector: Collector) -> Iterator[None]:
    """Scoped registration: install *collector* for the block."""
    add_collector(collector)
    try:
        yield
    finally:
        remove_collector(collector)


@contextmanager
def stage(name: str) -> Iterator[None]:
    """Time the block as *name* if any collector is installed."""
    if not _collectors:
        yield
        return
    t0 = perf_counter()
    try:
        yield
    finally:
        dt = perf_counter() - t0
        with _lock:
            active = list(_collectors)
        for collector in active:
            collector(name, dt)
