"""Lightweight stage instrumentation for the hot paths.

The arrangement builder, the invariant canonizer, and the isomorphism
search wrap their phases in :func:`stage`.  With no collector installed
the wrapper is a no-op apart from one truthiness check, so library users
pay nothing; the batch pipeline installs a collector around its work and
aggregates the timings into its :class:`~repro.pipeline.PipelineStats`.

Collectors are plain callables ``(stage_name, seconds) -> None`` held in
a module-level registry guarded by a lock (the threads backend records
from worker threads).  Process-pool workers run in separate interpreters
and are therefore not observed — the pipeline documents this.

Alongside the stage timers this module aggregates *counter sources*:
zero-argument callables returning a ``{name: int}`` snapshot of
monotonically increasing counters (the fast geometry kernel registers
its filter-hit/exact-fallback counters here at import).  Consumers take
a :func:`counter_snapshot` before and after a unit of work and diff the
two — that keeps the hot paths free of any per-call indirection.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Callable, Iterator

__all__ = [
    "stage",
    "add_collector",
    "remove_collector",
    "collecting",
    "add_counter_source",
    "remove_counter_source",
    "counter_snapshot",
    "counter_delta",
    "Deadline",
]

Collector = Callable[[str, float], None]
CounterSource = Callable[[], dict[str, int]]


class Deadline:
    """A cooperative time budget for long enumerations.

    Loops that cannot be preempted (universe enumeration in the
    compiled query engine runs in-process) instead poll an explicit
    deadline at their natural checkpoints, exactly as they poll their
    size budgets.  ``Deadline(seconds)`` starts the clock immediately;
    ``check(what)`` raises :class:`repro.errors.TimeoutError` once the
    budget is spent.  ``Deadline(None)`` never expires, so call sites
    need no conditional.

    The clock source is injectable for tests (pass ``clock=`` a callable
    returning monotonic seconds) — expiry can then be simulated without
    sleeping.
    """

    __slots__ = ("seconds", "_clock", "_t0")

    def __init__(
        self,
        seconds: float | None,
        clock: Callable[[], float] = perf_counter,
    ):
        if seconds is not None and seconds <= 0:
            raise ValueError("deadline must be positive (or None)")
        self.seconds = seconds
        self._clock = clock
        self._t0 = clock()

    def expired(self) -> bool:
        if self.seconds is None:
            return False
        return self._clock() - self._t0 >= self.seconds

    def remaining(self) -> float | None:
        """Seconds left, or None for an unbounded deadline."""
        if self.seconds is None:
            return None
        return max(0.0, self.seconds - (self._clock() - self._t0))

    def check(self, what: str = "operation") -> None:
        """Raise :class:`repro.errors.TimeoutError` when expired."""
        if self.expired():
            from .errors import TimeoutError

            raise TimeoutError(
                f"{what} exceeded its {self.seconds:g}s time budget",
                stage=what,
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Deadline({self.seconds!r})"

_lock = threading.Lock()
_collectors: list[Collector] = []
_counter_sources: list[CounterSource] = []


def add_counter_source(source: CounterSource) -> None:
    """Register a ``() -> {name: int}`` snapshot callable."""
    with _lock:
        _counter_sources.append(source)


def remove_counter_source(source: CounterSource) -> None:
    """Unregister a counter source previously added (no error if absent)."""
    with _lock:
        try:
            _counter_sources.remove(source)
        except ValueError:
            pass


def counter_snapshot() -> dict[str, int]:
    """Merged snapshot of every registered counter source."""
    with _lock:
        sources = list(_counter_sources)
    merged: dict[str, int] = {}
    for source in sources:
        merged.update(source())
    return merged


def counter_delta(
    before: dict[str, int], after: dict[str, int]
) -> dict[str, int]:
    """Per-counter increase between two snapshots (new counters count
    from zero; nothing is ever negative for monotone counters)."""
    return {
        name: value - before.get(name, 0) for name, value in after.items()
    }


def add_collector(collector: Collector) -> None:
    """Register a ``(stage_name, seconds)`` callback."""
    with _lock:
        _collectors.append(collector)


def remove_collector(collector: Collector) -> None:
    """Unregister a callback previously added (no error if absent)."""
    with _lock:
        try:
            _collectors.remove(collector)
        except ValueError:
            pass


@contextmanager
def collecting(collector: Collector) -> Iterator[None]:
    """Scoped registration: install *collector* for the block."""
    add_collector(collector)
    try:
        yield
    finally:
        remove_collector(collector)


@contextmanager
def stage(name: str) -> Iterator[None]:
    """Time the block as *name* if any collector is installed."""
    if not _collectors:
        yield
        return
    t0 = perf_counter()
    try:
        yield
    finally:
        dt = perf_counter() - t0
        with _lock:
            active = list(_collectors)
        for collector in active:
            collector(name, dt)
