"""Ehrenfeucht–Fraïssé games on finite relational structures.

Proposition 4.3 of the paper proves H-genericity of FO(Alg, Alg) with an
EF game in which Spoiler adds regions and Duplicator answers preserving
the topological invariant.  This module provides the classical finite
version used by the expressiveness experiments:

* :func:`duplicator_wins` — decide the r-round game between two finite
  structures by the standard back-and-forth recursion;
* :func:`distinguishing_rank` — the least number of rounds Spoiler needs
  (None if the structures are r-equivalent for every tested r).

A *structure* here is a :class:`~repro.relational.database.Database`;
plays pick elements of the active domains.
"""

from __future__ import annotations

from ..relational import Database

__all__ = ["duplicator_wins", "distinguishing_rank"]


def _partial_isomorphism(
    a: Database, b: Database, pairs: list[tuple[object, object]]
) -> bool:
    """Do the picked pairs define a partial isomorphism?

    Checks injectivity/functionality and the agreement of every relation
    on all tuples over the picked elements.
    """
    left = [x for x, _y in pairs]
    right = [y for _x, y in pairs]
    for i in range(len(pairs)):
        for j in range(len(pairs)):
            if (left[i] == left[j]) != (right[i] == right[j]):
                return False
    import itertools

    for name in a.relation_names():
        arity = a.schema[name].arity
        for combo in itertools.product(range(len(pairs)), repeat=arity):
            ta = tuple(left[k] for k in combo)
            tb = tuple(right[k] for k in combo)
            if (ta in a[name]) != (tb in b[name]):
                return False
    return True


def duplicator_wins(
    a: Database,
    b: Database,
    rounds: int,
    _pairs: list[tuple[object, object]] | None = None,
) -> bool:
    """Does Duplicator win the *rounds*-round EF game on (a, b)?

    By the EF theorem this holds iff a and b agree on all first-order
    sentences of quantifier rank <= rounds.
    """
    pairs = _pairs or []
    if not _partial_isomorphism(a, b, pairs):
        return False
    if rounds == 0:
        return True
    dom_a = sorted(a.active_domain(), key=repr)
    dom_b = sorted(b.active_domain(), key=repr)
    # Spoiler picks in a: Duplicator must answer in b; and symmetrically.
    for x in dom_a:
        if not any(
            duplicator_wins(a, b, rounds - 1, pairs + [(x, y)])
            for y in dom_b
        ):
            return False
    for y in dom_b:
        if not any(
            duplicator_wins(a, b, rounds - 1, pairs + [(x, y)])
            for x in dom_a
        ):
            return False
    return True


def distinguishing_rank(
    a: Database, b: Database, max_rounds: int = 4
) -> int | None:
    """The least r <= max_rounds with Spoiler winning the r-round game,
    or None when Duplicator survives all tested round counts."""
    for r in range(max_rounds + 1):
        if not duplicator_wins(a, b, r):
            return r
    return None
