"""Ehrenfeucht–Fraïssé games (the tool behind Proposition 4.3)."""

from .ef import distinguishing_rank, duplicator_wins

__all__ = ["distinguishing_rank", "duplicator_wins"]
