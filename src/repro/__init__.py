"""repro — a full reproduction of *Topological Queries in Spatial
Databases* (Papadimitriou, Suciu, Vianu; PODS 1996 / JCSS 1999).

The package implements the paper's topological invariant and everything
around it:

* :mod:`repro.geometry` — exact rational planar geometry;
* :mod:`repro.regions` — the region classes Rect, Rect*, Poly, Alg and
  spatial database instances;
* :mod:`repro.arrangement` — the planar arrangement / cell complex
  engine (the stand-in for the Kozen–Yap cell decomposition);
* :mod:`repro.invariant` — the invariant ``T_I``: computation,
  isomorphism (= H-equivalence, Theorem 3.4), validation (Theorem 3.8),
  realization as polygons (Theorem 3.5), the thematic mapping
  (Corollary 3.7), and the symmetry refinement ``S_I`` (Fig. 14);
* :mod:`repro.fourint` — Egenhofer's 4-intersection relations (Fig. 2);
* :mod:`repro.transforms` — the groups S, L, H and the Fig. 4 checker;
* :mod:`repro.relational` — a small relational engine (the classical
  side of the thematic bridge);
* :mod:`repro.logic` — the region-based languages FO(Region, Region'),
  cell semantics, rectangle order abstraction (Theorem 6.4), the
  point-based languages with the Section 5 translations, and the
  completeness machinery (Prop. 5.1 / Theorem 5.6);
* :mod:`repro.games`, :mod:`repro.encodings`, :mod:`repro.stringgraph`
  — EF games, the Theorem 6.1 arithmetic encodings, and the Σ1 /
  string-graph connection (Prop. 6.2);
* :mod:`repro.datasets` — every figure of the paper as an executable
  instance, plus benchmark workload generators.

Quickstart::

    from repro import Rect, SpatialInstance, invariant, topologically_equivalent

    lens = SpatialInstance({"A": Rect(0, 0, 4, 4), "B": Rect(2, 2, 6, 6)})
    T = invariant(lens)              # the paper's T_I
    T.counts()                        # (2, 4, 4): Example 3.1
"""

from .errors import (
    ArrangementError,
    ComputeError,
    EncodingError,
    GeometryError,
    InstanceError,
    InvariantError,
    OverloadError,
    ParseError,
    PipelineError,
    QueryError,
    RegionError,
    ReproError,
    SchemaError,
    ServiceClosedError,
    ServiceError,
    ShardDownError,
    StoreError,
    StoreUnavailableError,
    UnknownInstanceError,
    ValidationError,
    WorkerError,
)
from .fourint import Egenhofer, classify, four_intersection_equivalent
from .geometry import Location, Point, Q, Segment, SimplePolygon
from .invariant import (
    TopologicalInvariant,
    are_isomorphic,
    canonical_form,
    canonical_hash,
    find_isomorphism,
    instance_key,
    invariant,
    realize,
    s_equivalent,
    s_invariant,
    thematic,
    topologically_equivalent,
    validate_database,
    validate_invariant,
)
from .logic import evaluate_cells, evaluate_rect, parse
from .pipeline import (
    BatchResult,
    InvariantCache,
    InvariantPipeline,
    Outcome,
    PipelineStats,
    RetryPolicy,
    topologically_equivalent_batch,
)
from .regions import (
    AlgRegion,
    Poly,
    Rect,
    RectUnion,
    Region,
    SpatialInstance,
)
from .service import QueryAnswer, QueryService, ShardedQueryService
from .store import MirroredStore, Scrubber, SegmentStore
from .tracing import Trace, Tracer

__version__ = "1.0.0"

__all__ = [
    "AlgRegion",
    "ArrangementError",
    "BatchResult",
    "ComputeError",
    "Egenhofer",
    "EncodingError",
    "GeometryError",
    "InstanceError",
    "InvariantCache",
    "InvariantError",
    "InvariantPipeline",
    "Location",
    "MirroredStore",
    "Outcome",
    "OverloadError",
    "ParseError",
    "PipelineError",
    "PipelineStats",
    "Point",
    "Poly",
    "Q",
    "QueryAnswer",
    "QueryError",
    "QueryService",
    "Rect",
    "RectUnion",
    "Region",
    "RegionError",
    "ReproError",
    "RetryPolicy",
    "SchemaError",
    "Scrubber",
    "Segment",
    "SegmentStore",
    "ServiceClosedError",
    "ServiceError",
    "ShardDownError",
    "ShardedQueryService",
    "StoreError",
    "StoreUnavailableError",
    "SimplePolygon",
    "SpatialInstance",
    "TopologicalInvariant",
    "Trace",
    "Tracer",
    "UnknownInstanceError",
    "ValidationError",
    "WorkerError",
    "__version__",
    "are_isomorphic",
    "canonical_form",
    "canonical_hash",
    "classify",
    "evaluate_cells",
    "evaluate_rect",
    "find_isomorphism",
    "four_intersection_equivalent",
    "instance_key",
    "invariant",
    "parse",
    "realize",
    "s_equivalent",
    "s_invariant",
    "thematic",
    "topologically_equivalent",
    "topologically_equivalent_batch",
    "validate_database",
    "validate_invariant",
]
