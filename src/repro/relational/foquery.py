"""First-order queries over finite relational structures.

An active-domain-semantics FO evaluator: quantifiers range over the
active domain of the database.  This is the classical query language the
paper's thematic bridge targets (Corollary 3.7: every topological query
becomes a classical query against ``thematic(I)``).

The AST is deliberately tiny and composable::

    q = Exists("f",
            And(Atom("Faces", Var("f")),
                Not(Atom("Exterior_Face", Var("f")))))
    q.evaluate(db)          # -> bool (sentence)
    q.free_variables()      # -> set of names
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from ..errors import QueryError
from .database import Database

__all__ = [
    "Term",
    "Var",
    "Const",
    "Formula",
    "Atom",
    "Eq",
    "Not",
    "And",
    "Or",
    "Implies",
    "Exists",
    "ForAll",
    "evaluate",
]


class Term:
    """A term: a variable or a constant."""


@dataclass(frozen=True)
class Var(Term):
    name: str

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True)
class Const(Term):
    value: object

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return repr(self.value)


def _value(term: Term, env: Mapping[str, object]) -> object:
    if isinstance(term, Var):
        try:
            return env[term.name]
        except KeyError:
            raise QueryError(f"unbound variable {term.name!r}") from None
    if isinstance(term, Const):
        return term.value
    raise QueryError(f"not a term: {term!r}")


class Formula:
    """Base class for FO formulas."""

    def free_variables(self) -> frozenset[str]:
        raise NotImplementedError

    def holds(self, db: Database, env: Mapping[str, object]) -> bool:
        raise NotImplementedError

    def evaluate(self, db: Database) -> bool:
        """Evaluate a sentence (no free variables)."""
        free = self.free_variables()
        if free:
            raise QueryError(
                f"cannot evaluate formula with free variables {sorted(free)}"
            )
        return self.holds(db, {})

    def answers(self, db: Database) -> Iterator[dict[str, object]]:
        """All satisfying assignments of the free variables."""
        free = sorted(self.free_variables())
        domain = sorted(db.active_domain(), key=repr)

        def rec(i: int, env: dict) -> Iterator[dict]:
            if i == len(free):
                if self.holds(db, env):
                    yield dict(env)
                return
            for v in domain:
                env[free[i]] = v
                yield from rec(i + 1, env)
            env.pop(free[i], None)

        yield from rec(0, {})

    # Connective sugar.
    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)


@dataclass(frozen=True)
class Atom(Formula):
    """Membership of a tuple of terms in a named relation."""

    relation: str
    terms: tuple[Term, ...]

    def __init__(self, relation: str, *terms: Term):
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "terms", tuple(terms))

    def free_variables(self) -> frozenset[str]:
        return frozenset(
            t.name for t in self.terms if isinstance(t, Var)
        )

    def holds(self, db: Database, env) -> bool:
        row = tuple(_value(t, env) for t in self.terms)
        return row in db[self.relation]


@dataclass(frozen=True)
class Eq(Formula):
    left: Term
    right: Term

    def free_variables(self) -> frozenset[str]:
        return frozenset(
            t.name for t in (self.left, self.right) if isinstance(t, Var)
        )

    def holds(self, db: Database, env) -> bool:
        return _value(self.left, env) == _value(self.right, env)


@dataclass(frozen=True)
class Not(Formula):
    inner: Formula

    def free_variables(self) -> frozenset[str]:
        return self.inner.free_variables()

    def holds(self, db: Database, env) -> bool:
        return not self.inner.holds(db, env)


class _Nary(Formula):
    def __init__(self, *parts: Formula):
        self.parts = tuple(parts)

    def free_variables(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for p in self.parts:
            out |= p.free_variables()
        return out

    def __eq__(self, other):
        return type(self) is type(other) and self.parts == other.parts

    def __hash__(self):
        return hash((type(self).__name__, self.parts))


class And(_Nary):
    def holds(self, db: Database, env) -> bool:
        return all(p.holds(db, env) for p in self.parts)


class Or(_Nary):
    def holds(self, db: Database, env) -> bool:
        return any(p.holds(db, env) for p in self.parts)


@dataclass(frozen=True)
class Implies(Formula):
    antecedent: Formula
    consequent: Formula

    def free_variables(self) -> frozenset[str]:
        return (
            self.antecedent.free_variables()
            | self.consequent.free_variables()
        )

    def holds(self, db: Database, env) -> bool:
        return (not self.antecedent.holds(db, env)) or self.consequent.holds(
            db, env
        )


class _Quantifier(Formula):
    def __init__(self, variable: str, body: Formula):
        self.variable = variable
        self.body = body

    def free_variables(self) -> frozenset[str]:
        return self.body.free_variables() - {self.variable}

    def __eq__(self, other):
        return (
            type(self) is type(other)
            and self.variable == other.variable
            and self.body == other.body
        )

    def __hash__(self):
        return hash((type(self).__name__, self.variable, self.body))


class Exists(_Quantifier):
    def holds(self, db: Database, env) -> bool:
        env = dict(env)
        for v in db.active_domain():
            env[self.variable] = v
            if self.body.holds(db, env):
                return True
        return False


class ForAll(_Quantifier):
    def holds(self, db: Database, env) -> bool:
        env = dict(env)
        for v in db.active_domain():
            env[self.variable] = v
            if not self.body.holds(db, env):
                return False
        return True


def evaluate(formula: Formula, db: Database) -> bool:
    """Convenience wrapper: evaluate a sentence against a database."""
    return formula.evaluate(db)
