"""Relations: immutable sets of fixed-arity tuples over a schema."""

from __future__ import annotations

from typing import Iterable, Iterator

from ..errors import SchemaError
from .schema import Schema

__all__ = ["Relation"]


class Relation:
    """An immutable relation instance.

    Tuples are plain Python tuples whose length must equal the schema
    arity; values may be any hashable objects (strings in the thematic
    database).
    """

    __slots__ = ("schema", "tuples")

    def __init__(self, schema: Schema | Iterable[str], tuples: Iterable[tuple] = ()):
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        rows = frozenset(tuple(t) for t in tuples)
        for t in rows:
            if len(t) != schema.arity:
                raise SchemaError(
                    f"tuple {t!r} does not match arity {schema.arity}"
                )
        self.schema = schema
        self.tuples: frozenset[tuple] = rows

    # -- container protocol ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[tuple]:
        return iter(sorted(self.tuples, key=repr))

    def __contains__(self, t: tuple) -> bool:
        return tuple(t) in self.tuples

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Relation)
            and self.schema == other.schema
            and self.tuples == other.tuples
        )

    def __hash__(self) -> int:
        return hash((self.schema, self.tuples))

    def is_empty(self) -> bool:
        return not self.tuples

    # -- columns ----------------------------------------------------------------

    def column(self, attribute: str) -> set:
        """The set of values in one column."""
        i = self.schema.index_of(attribute)
        return {t[i] for t in self.tuples}

    def active_domain(self) -> set:
        """All values appearing anywhere in the relation."""
        return {v for t in self.tuples for v in t}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Relation({self.schema.attributes}, {len(self.tuples)} tuples)"
        )
