"""A small relational database engine: schemas, relations, algebra, and a
first-order query evaluator — the classical side of the paper's thematic
bridge."""

from .algebra import (
    difference,
    intersection,
    natural_join,
    product,
    project,
    rename,
    select,
    union,
)
from .database import Database
from .foquery import (
    And,
    Atom,
    Const,
    Eq,
    Exists,
    ForAll,
    Formula,
    Implies,
    Not,
    Or,
    Term,
    Var,
    evaluate,
)
from .relation import Relation
from .schema import TH_SCHEMA, DatabaseSchema, Schema

__all__ = [
    "And",
    "Atom",
    "Const",
    "Database",
    "DatabaseSchema",
    "Eq",
    "Exists",
    "ForAll",
    "Formula",
    "Implies",
    "Not",
    "Or",
    "Relation",
    "Schema",
    "TH_SCHEMA",
    "Term",
    "Var",
    "difference",
    "evaluate",
    "intersection",
    "natural_join",
    "product",
    "project",
    "rename",
    "select",
    "union",
]
