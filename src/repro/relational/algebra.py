"""Relational algebra over :class:`~repro.relational.relation.Relation`.

The classical five operators plus natural join and rename.  These are the
building blocks the thematic queries compile to (Corollary 3.7 of the
paper: topological queries become classical database queries against the
invariant).
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from ..errors import SchemaError
from .relation import Relation
from .schema import Schema

__all__ = [
    "select",
    "project",
    "rename",
    "union",
    "difference",
    "intersection",
    "product",
    "natural_join",
]


def select(rel: Relation, predicate: Callable[[Mapping[str, object]], bool]) -> Relation:
    """Tuples satisfying *predicate*, which receives an attribute->value map."""
    attrs = rel.schema.attributes
    kept = [
        t for t in rel.tuples if predicate(dict(zip(attrs, t)))
    ]
    return Relation(rel.schema, kept)


def project(rel: Relation, attributes: Iterable[str]) -> Relation:
    attrs = tuple(attributes)
    idx = [rel.schema.index_of(a) for a in attrs]
    return Relation(
        Schema(attrs), {tuple(t[i] for i in idx) for t in rel.tuples}
    )


def rename(rel: Relation, mapping: Mapping[str, str]) -> Relation:
    return Relation(rel.schema.rename(mapping), rel.tuples)


def _require_same_schema(a: Relation, b: Relation, op: str) -> None:
    if a.schema != b.schema:
        raise SchemaError(
            f"{op} requires identical schemas, got "
            f"{a.schema.attributes} and {b.schema.attributes}"
        )


def union(a: Relation, b: Relation) -> Relation:
    _require_same_schema(a, b, "union")
    return Relation(a.schema, a.tuples | b.tuples)


def difference(a: Relation, b: Relation) -> Relation:
    _require_same_schema(a, b, "difference")
    return Relation(a.schema, a.tuples - b.tuples)


def intersection(a: Relation, b: Relation) -> Relation:
    _require_same_schema(a, b, "intersection")
    return Relation(a.schema, a.tuples & b.tuples)


def product(a: Relation, b: Relation) -> Relation:
    """Cartesian product; attribute names must be disjoint."""
    overlap = set(a.schema.attributes) & set(b.schema.attributes)
    if overlap:
        raise SchemaError(
            f"product requires disjoint attributes; shared: {sorted(overlap)}"
        )
    schema = Schema(a.schema.attributes + b.schema.attributes)
    return Relation(
        schema, {ta + tb for ta in a.tuples for tb in b.tuples}
    )


def natural_join(a: Relation, b: Relation) -> Relation:
    """Join on all shared attribute names."""
    shared = [x for x in a.schema.attributes if x in b.schema.attributes]
    only_b = [x for x in b.schema.attributes if x not in shared]
    schema = Schema(a.schema.attributes + tuple(only_b))
    ia = [a.schema.index_of(x) for x in shared]
    ib = [b.schema.index_of(x) for x in shared]
    ib_rest = [b.schema.index_of(x) for x in only_b]
    index: dict[tuple, list[tuple]] = {}
    for tb in b.tuples:
        index.setdefault(tuple(tb[i] for i in ib), []).append(tb)
    rows = set()
    for ta in a.tuples:
        key = tuple(ta[i] for i in ia)
        for tb in index.get(key, ()):
            rows.add(ta + tuple(tb[i] for i in ib_rest))
    return Relation(schema, rows)
