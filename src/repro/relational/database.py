"""Relational database instances."""

from __future__ import annotations

from typing import Iterable, Mapping

from ..errors import SchemaError
from .relation import Relation
from .schema import DatabaseSchema, Schema

__all__ = ["Database"]


class Database:
    """A finite relational structure: named relations over a schema.

    Relations missing from *relations* are materialized empty, so every
    relation named by the schema is always present.
    """

    def __init__(
        self,
        schema: DatabaseSchema,
        relations: Mapping[str, Relation | Iterable[tuple]] | None = None,
    ):
        self.schema = schema
        self._relations: dict[str, Relation] = {}
        supplied = dict(relations or {})
        for name in schema.names():
            value = supplied.pop(name, ())
            if isinstance(value, Relation):
                if value.schema != schema[name]:
                    raise SchemaError(
                        f"relation {name!r} has schema "
                        f"{value.schema.attributes}, expected "
                        f"{schema[name].attributes}"
                    )
                self._relations[name] = value
            else:
                self._relations[name] = Relation(schema[name], value)
        if supplied:
            raise SchemaError(
                f"relations not in schema: {sorted(supplied)}"
            )

    def __getitem__(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"no relation {name!r}") from None

    def relation_names(self) -> tuple[str, ...]:
        return tuple(self._relations)

    def active_domain(self) -> set:
        dom: set = set()
        for rel in self._relations.values():
            dom |= rel.active_domain()
        return dom

    def with_relation(self, name: str, relation: Relation) -> "Database":
        """A copy with one relation replaced."""
        rels = dict(self._relations)
        rels[name] = relation
        return Database(self.schema, rels)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Database)
            and self.schema == other.schema
            and self._relations == other._relations
        )

    def __hash__(self) -> int:
        return hash(
            (self.schema, tuple(sorted(self._relations.items())))
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sizes = ", ".join(
            f"{name}:{len(rel)}" for name, rel in self._relations.items()
        )
        return f"Database({sizes})"
