"""Relational schemas.

A :class:`Schema` is an ordered tuple of attribute names; a
:class:`DatabaseSchema` maps relation names to schemas.  The thematic
schema ``Th`` of the paper (Section 3, Fig. 9) is provided as a module
constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..errors import SchemaError

__all__ = ["Schema", "DatabaseSchema", "TH_SCHEMA"]


@dataclass(frozen=True)
class Schema:
    """An ordered list of distinct attribute names."""

    attributes: tuple[str, ...]

    def __init__(self, attributes: Iterable[str]):
        attrs = tuple(attributes)
        if len(set(attrs)) != len(attrs):
            raise SchemaError(f"duplicate attributes in {attrs!r}")
        if not all(isinstance(a, str) and a for a in attrs):
            raise SchemaError("attributes must be nonempty strings")
        object.__setattr__(self, "attributes", attrs)

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def index_of(self, attribute: str) -> int:
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise SchemaError(
                f"no attribute {attribute!r} in {self.attributes!r}"
            ) from None

    def __contains__(self, attribute: str) -> bool:
        return attribute in self.attributes

    def project(self, attributes: Iterable[str]) -> "Schema":
        attrs = tuple(attributes)
        for a in attrs:
            if a not in self.attributes:
                raise SchemaError(f"cannot project on missing {a!r}")
        return Schema(attrs)

    def rename(self, mapping: Mapping[str, str]) -> "Schema":
        return Schema(tuple(mapping.get(a, a) for a in self.attributes))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Schema({', '.join(self.attributes)})"


@dataclass(frozen=True)
class DatabaseSchema:
    """Relation name -> schema."""

    relations: Mapping[str, Schema]

    def __init__(self, relations: Mapping[str, Iterable[str]]):
        object.__setattr__(
            self,
            "relations",
            {
                name: sch if isinstance(sch, Schema) else Schema(sch)
                for name, sch in relations.items()
            },
        )

    def __getitem__(self, name: str) -> Schema:
        try:
            return self.relations[name]
        except KeyError:
            raise SchemaError(f"no relation {name!r} in schema") from None

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def names(self) -> tuple[str, ...]:
        return tuple(self.relations)


#: The paper's thematic schema ``Th`` (Section 3).  ``Endpoints`` is the
#: paper's ternary relation flattened to (edge, vertex) pairs plus an
#: occurrence index so loops at a vertex remain representable.
TH_SCHEMA = DatabaseSchema(
    {
        "Regions": ("name",),
        "Vertices": ("cell",),
        "Edges": ("cell",),
        "Faces": ("cell",),
        "Exterior_Face": ("cell",),
        "Endpoints": ("edge", "vertex"),
        "Face_Edges": ("face", "edge"),
        "Region_Faces": ("name", "face"),
        "Cell_Labels": ("cell", "name", "sign"),
        "Orientation": ("sense", "vertex", "edge1", "edge2"),
    }
)
