"""Persistent invariant storage: mmap segments, succinct ``T_I``
records, z-order window queries.

The public surface is :class:`SegmentStore` (a directory of append-only
segment files with newest-wins semantics), :class:`MirroredStore` (the
same record set written through to N replica directories, with failover
and read-repair), :class:`Scrubber` (online at-rest-corruption
detection and repair), plus the codec pair for callers that frame
records themselves.  See :mod:`repro.store.segment` for the on-disk
layout and crash model, :mod:`repro.store.codec` for the record format,
:mod:`repro.store.zindex` for the Morton-range window-query machinery,
and :data:`repro.store.store.SYNC_POLICIES` for the durability
contract.
"""

from .codec import (
    StoredRecord,
    decode_complex,
    decode_record,
    encode_complex,
    encode_record,
)
from .mirror import MirroredStore
from .scrub import ScrubReport, Scrubber
from .segment import Segment
from .store import SYNC_POLICIES, SegmentStore
from .zindex import morton_codes, morton_ranges

__all__ = [
    "SegmentStore",
    "MirroredStore",
    "Scrubber",
    "ScrubReport",
    "SYNC_POLICIES",
    "Segment",
    "StoredRecord",
    "encode_record",
    "decode_record",
    "encode_complex",
    "decode_complex",
    "morton_codes",
    "morton_ranges",
]
