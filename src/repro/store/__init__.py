"""Persistent invariant storage: mmap segments, succinct ``T_I``
records, z-order window queries.

The public surface is :class:`SegmentStore` (a directory of append-only
segment files with newest-wins semantics) plus the codec pair for
callers that frame records themselves.  See :mod:`repro.store.segment`
for the on-disk layout and crash model, :mod:`repro.store.codec` for
the record format, and :mod:`repro.store.zindex` for the Morton-range
window-query machinery.
"""

from .codec import (
    StoredRecord,
    decode_complex,
    decode_record,
    encode_complex,
    encode_record,
)
from .segment import Segment
from .store import SegmentStore
from .zindex import morton_codes, morton_ranges

__all__ = [
    "SegmentStore",
    "Segment",
    "StoredRecord",
    "encode_record",
    "decode_record",
    "encode_complex",
    "decode_complex",
    "morton_codes",
    "morton_ranges",
]
