"""Online scrubbing: find at-rest corruption before a reader does.

A :class:`Scrubber` walks every sealed segment of a
:class:`~repro.store.store.SegmentStore` (or of every replica of a
:class:`~repro.store.mirror.MirroredStore`) re-verifying what the write
path took for granted: each record's envelope framing and payload
sha256, and each footer's trailer checksum.  The walk is *incremental*
— :meth:`step` verifies at most ``records_per_step`` records and
returns, so a service can interleave scrubbing with traffic — and
*rate-limited only by that budget*: no clocks, so a seeded chaos run
scrubs deterministically.

When a segment fails verification it is **quarantined** (moved to
``root/quarantine/`` and dropped from the serving set — corrupt bytes
are evidence, not data) and every key it was serving is **repaired**:

* from a healthy replica, when the store is mirrored and a peer holds
  the record (the common case; the copy is bit-identical), else
* by **recompute**, when the scrubber was given a pipeline and a
  geometry source that can produce the instance for a key, else
* counted ``scrub.keys_unrepairable`` and left missing (a structured
  miss — never a wrong record).

Progress and outcomes tally into a ``scrub.*`` counter family
registered with :mod:`repro.instrument`, so scrub state shows up in
:class:`~repro.pipeline.PipelineStats` and the service ``health()``
payload alongside ``store.*`` and ``fault.*``.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable

from ..errors import StoreError
from ..instrument import add_counter_source
from . import codec
from .segment import KIND_INVARIANT, KIND_TOMBSTONE, Segment
from .store import SegmentStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..regions import SpatialInstance
    from .mirror import MirroredStore

__all__ = ["Scrubber", "ScrubReport"]

# -- scrub.* counters ---------------------------------------------------------

_tally_lock = threading.Lock()
_tally: dict[str, int] = {}


def _count(name: str, n: int = 1) -> None:
    with _tally_lock:
        key = f"scrub.{name}"
        _tally[key] = _tally.get(key, 0) + n


def _snapshot() -> dict[str, int]:
    with _tally_lock:
        return dict(_tally)


add_counter_source(_snapshot)


class ScrubReport:
    """What one full pass found and did."""

    __slots__ = (
        "records_verified",
        "segments_verified",
        "defects",
        "quarantined",
        "repaired",
        "recomputed",
        "unrepairable",
    )

    def __init__(self):
        self.records_verified = 0
        self.segments_verified = 0
        self.defects = 0
        self.quarantined = 0
        self.repaired = 0
        self.recomputed = 0
        self.unrepairable = 0

    @property
    def clean(self) -> bool:
        """True when the pass found no corruption at all."""
        return self.defects == 0

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__} | {
            "clean": self.clean
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ScrubReport({self.as_dict()!r})"


class Scrubber:
    """An incremental verify/quarantine/repair pass over sealed
    segments.

    Parameters
    ----------
    store:
        A :class:`SegmentStore` or :class:`MirroredStore`.  Mirrors are
        scrubbed replica by replica, and a quarantined segment's keys
        are repaired from the healthy peers.
    records_per_step:
        The verification budget of one :meth:`step` call — the rate
        limit, expressed in work units rather than wall time so seeded
        runs stay deterministic.
    pipeline / geometry_source:
        The recompute fallback: ``geometry_source(key_hex)`` returns
        the :class:`SpatialInstance` for a lost invariant record (or
        None), and *pipeline* recomputes its invariant.  Without them,
        keys no replica holds stay missing (counted).
    """

    def __init__(
        self,
        store: "SegmentStore | MirroredStore",
        records_per_step: int = 512,
        pipeline=None,
        geometry_source: "Callable[[str], SpatialInstance | None] | None" = None,
    ):
        if records_per_step < 1:
            raise ValueError("records_per_step must be >= 1")
        self.records_per_step = int(records_per_step)
        self.pipeline = pipeline
        self.geometry_source = geometry_source
        from .mirror import MirroredStore as _Mirrored

        self._mirror = store if isinstance(store, _Mirrored) else None
        self._stores: list[SegmentStore] = (
            store.replicas if self._mirror is not None else [store]
        )
        self._lock = threading.Lock()
        self._passes = 0
        self._last_report: ScrubReport | None = None
        # In-progress pass state: a snapshot work list per replica and
        # a cursor into it.  None when no pass is underway.
        self._work: list[list[Segment]] | None = None
        self._rep_idx = 0
        self._seg_idx = 0
        self._offset: int | None = None
        self._footer_checked = False
        self._report: ScrubReport | None = None

    # -- pass state ---------------------------------------------------------

    def state(self) -> dict:
        """A health-endpoint snapshot of scrub progress."""
        with self._lock:
            segments_total = segments_done = 0
            if self._work is not None:
                segments_total = sum(len(w) for w in self._work)
                segments_done = (
                    sum(len(w) for w in self._work[: self._rep_idx])
                    + self._seg_idx
                )
            last = self._last_report
            return {
                "passes_completed": self._passes,
                "in_progress": self._work is not None,
                "segments_total": segments_total,
                "segments_done": segments_done,
                "last_pass_clean": None if last is None else last.clean,
                "last_pass_defects": 0 if last is None else last.defects,
                "last_pass_repaired": 0 if last is None else last.repaired,
            }

    @property
    def last_report(self) -> ScrubReport | None:
        return self._last_report

    def _begin_pass(self) -> None:
        self._work = [store.sealed_segments() for store in self._stores]
        self._rep_idx = 0
        self._seg_idx = 0
        self._offset = None
        self._footer_checked = False
        self._report = ScrubReport()
        _count("passes_started")

    def _finish_pass(self) -> ScrubReport:
        report = self._report
        assert report is not None
        self._work = None
        self._report = None
        self._passes += 1
        self._last_report = report
        _count("passes_completed")
        if not report.clean:
            _count("dirty_passes")
        return report

    def _advance_segment(self) -> None:
        self._seg_idx += 1
        self._offset = None
        self._footer_checked = False
        assert self._work is not None
        while (
            self._rep_idx < len(self._work)
            and self._seg_idx >= len(self._work[self._rep_idx])
        ):
            self._rep_idx += 1
            self._seg_idx = 0

    def _current(self) -> tuple[SegmentStore, Segment] | None:
        assert self._work is not None
        while self._rep_idx < len(self._work):
            work = self._work[self._rep_idx]
            if self._seg_idx >= len(work):
                self._rep_idx += 1
                self._seg_idx = 0
                continue
            seg = work[self._seg_idx]
            store = self._stores[self._rep_idx]
            if store.closed or seg not in store.sealed_segments():
                # Compacted or quarantined since the snapshot: its
                # records were re-verified on the way out (compaction)
                # or are being repaired (quarantine).
                self._advance_segment()
                continue
            return store, seg
        return None

    # -- the walk -----------------------------------------------------------

    def step(self) -> ScrubReport | None:
        """Verify up to ``records_per_step`` records.  Returns the pass
        report when this step *completed* a full pass, else None."""
        with self._lock:
            if self._work is None:
                self._begin_pass()
            report = self._report
            assert report is not None
            budget = self.records_per_step
            while budget > 0:
                current = self._current()
                if current is None:
                    return self._finish_pass()
                store, seg = current
                if not self._footer_checked:
                    self._footer_checked = True
                    ok = False
                    try:
                        ok = seg.verify_footer()
                    except (StoreError, OSError, ValueError):
                        ok = False
                    if not ok:
                        report.defects += 1
                        _count("defects_found")
                        _count("footer_defects")
                        self._quarantine_and_repair(store, seg)
                        self._advance_segment()
                        continue
                try:
                    defects, next_offset, verified = seg.verify_records(
                        self._offset, limit=budget
                    )
                except (StoreError, OSError, ValueError):
                    defects, next_offset, verified = (
                        [{"type": "envelope", "offset": self._offset}],
                        None,
                        0,
                    )
                budget -= verified + len(defects)
                report.records_verified += verified
                _count("records_verified", verified)
                if defects:
                    report.defects += len(defects)
                    _count("defects_found", len(defects))
                    self._quarantine_and_repair(store, seg)
                    self._advance_segment()
                elif next_offset is None:
                    report.segments_verified += 1
                    _count("segments_verified")
                    self._advance_segment()
                else:
                    self._offset = next_offset
            return None

    def run(self, max_steps: int | None = None) -> ScrubReport:
        """Drive :meth:`step` until the current pass completes (or
        *max_steps* is hit — then the partial report so far)."""
        steps = 0
        while True:
            report = self.step()
            if report is not None:
                return report
            steps += 1
            if max_steps is not None and steps >= max_steps:
                with self._lock:
                    partial = self._report
                return partial if partial is not None else ScrubReport()

    def run_until_clean(self, max_passes: int = 8) -> ScrubReport:
        """Scrub repeatedly until a full pass finds zero defects —
        convergence, the chaos property's end state.  Raises
        :class:`StoreError` if *max_passes* passes cannot get there
        (repair is failing to stick)."""
        for _ in range(max_passes):
            report = self.run()
            if report.clean:
                return report
        raise StoreError(
            f"scrub did not converge after {max_passes} passes",
            op="scrub",
        )

    # -- quarantine + repair ------------------------------------------------

    def _quarantine_and_repair(self, store: SegmentStore, seg: Segment) -> None:
        report = self._report
        assert report is not None
        lost = self._safe_keys(seg)
        dest = store.quarantine_segment(seg)
        if dest is None:
            return  # raced: no longer in the serving set
        report.quarantined += 1
        _count("segments_quarantined")
        for raw, kind in sorted(lost.items()):
            try:
                have = store.get_raw(raw)
            except StoreError:
                have = None
            if have is not None:
                continue  # an older/newer segment still serves it
            if kind == KIND_TOMBSTONE:
                continue  # missing already reads as deleted
            self._repair_key(store, raw, kind)

    @staticmethod
    def _safe_keys(seg: Segment) -> dict[bytes, int]:
        """Every key the segment serves, best-effort: the footer table
        when it is readable, the envelope scan (stopping at the first
        garbled envelope) when not.  Partial enumeration is fine — a
        key we cannot name was torn beyond the envelope discipline and
        reads as a miss everywhere."""
        keys: dict[bytes, int] = {}
        try:
            for raw, entry in seg.live_items():
                keys[raw] = entry.kind
        except (StoreError, OSError, ValueError):
            try:
                for raw, entry in seg.scan():
                    keys[raw] = entry.kind
            except (StoreError, OSError, ValueError):
                pass
        return keys

    def _repair_key(self, store: SegmentStore, raw: bytes, kind: int) -> None:
        report = self._report
        assert report is not None
        # 1. A healthy replica's verbatim bytes.  Only *up* peers: a
        # down replica may have missed writes (a delete, an overwrite),
        # and copying its stale-but-valid records would resurrect them.
        if self._mirror is not None:
            down = self._mirror._down
            for idx, peer in enumerate(self._stores):
                if peer is store or peer.closed or down[idx]:
                    continue
                try:
                    res = peer.get_raw(raw)
                except StoreError:
                    continue
                if res is None or res[0] == KIND_TOMBSTONE:
                    continue
                try:
                    store.put_raw(raw, res[1], res[0], res[2])
                except StoreError:
                    break  # target cannot accept writes; give up here
                report.repaired += 1
                _count("keys_repaired")
                return
        # 2. Recompute through the pipeline.
        if (
            kind == KIND_INVARIANT
            and self.pipeline is not None
            and self.geometry_source is not None
        ):
            instance = self.geometry_source(raw.hex())
            if instance is not None:
                from ..invariant.canonical import canonical_hash

                invariant = self.pipeline.compute_batch([instance])[0]
                payload = codec.encode_record(
                    invariant,
                    instance=instance,
                    canonical_hash=canonical_hash(invariant),
                )
                from .store import _safe_float_bbox

                try:
                    store.put_raw(
                        raw,
                        payload,
                        KIND_INVARIANT,
                        _safe_float_bbox(instance),
                    )
                except StoreError:
                    pass
                else:
                    report.recomputed += 1
                    _count("keys_recomputed")
                    return
        report.unrepairable += 1
        _count("keys_unrepairable")
