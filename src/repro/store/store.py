"""The segment store: a directory of append-only segments.

:class:`SegmentStore` manages ``seg-NNNNN.seg`` files under one root
directory.  The highest-numbered segment is *active* (writable,
dict-indexed); every earlier one is *sealed* (read-only, probed through
its mmap'd footer).  When the active segment outgrows
``max_segment_bytes`` it is sealed in place and a fresh one is opened.
Reads resolve **newest-wins**: the active segment first, then sealed
segments newest to oldest; a tombstone record shadows every older
version of its key.

Values are the compact binary records of :mod:`repro.store.codec` —
invariants (with optional embedded geometry) under the caller's key,
cell complexes under a derived per-key namespace — so a ``get`` is an
index probe plus a zero-copy decode over the mmap, never a pickle.

Opening a store heals it: a segment with a torn tail (crash
mid-append) is truncated to its last fully-written record and
re-sealed, per the envelope discipline in :mod:`repro.store.segment`.
Compaction rewrites the live records into one fresh segment (newest
number, so it wins), fsyncs, then unlinks the inputs; tombstones that
still shadow an older record are carried along, which keeps deletes
in force even if a crash lands between the rename and the unlinks.

Every operation tallies into a module-level ``store.*`` counter family
registered with :mod:`repro.instrument`, so store traffic shows up in
:class:`~repro.pipeline.PipelineStats` next to ``kernel.*`` and
``cache'``s counters.
"""

from __future__ import annotations

import hashlib
import threading
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from ..errors import InstanceError, StoreError
from ..instrument import add_counter_source
from . import codec
from .segment import (
    KIND_COMPLEX,
    KIND_INVARIANT,
    KIND_TOMBSTONE,
    Segment,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..arrangement.soa import ComplexArrays
    from ..invariant import TopologicalInvariant
    from ..regions import SpatialInstance

__all__ = ["SegmentStore"]

_DEFAULT_SEGMENT_BYTES = 64 << 20

# -- store.* counters ---------------------------------------------------------

_tally_lock = threading.Lock()
_tally: dict[str, int] = {}


def _count(name: str, n: int = 1) -> None:
    with _tally_lock:
        key = f"store.{name}"
        _tally[key] = _tally.get(key, 0) + n


def _snapshot() -> dict[str, int]:
    with _tally_lock:
        return dict(_tally)


add_counter_source(_snapshot)


def _raw_key(key: str | bytes) -> bytes:
    if isinstance(key, str):
        try:
            raw = bytes.fromhex(key)
        except ValueError as exc:
            raise StoreError(f"store keys must be hex digests: {key!r}") from exc
    else:
        raw = bytes(key)
    if len(raw) != 32:
        raise StoreError(
            f"store keys must be 32 bytes (sha256); got {len(raw)}"
        )
    return raw


def _cx_key(raw: bytes) -> bytes:
    """The namespace key a complex is stored under for instance *raw*."""
    return hashlib.sha256(raw + b":complex").digest()


def _safe_float_bbox(instance) -> tuple | None:
    """The instance bbox as floats, or None when it has no finite
    float image (empty instance, astronomically large rationals)."""
    try:
        box = instance.bbox()
        return (
            float(box.xmin),
            float(box.ymin),
            float(box.xmax),
            float(box.ymax),
        )
    except (OverflowError, ValueError, ArithmeticError, InstanceError):
        return None


class SegmentStore:
    """An append-only, mmap-backed store of invariants keyed by
    ``instance_key`` digests (hex strings or raw 32-byte keys).

    Thread-safe for interleaved puts/gets under one process; the sealed
    read path is lock-free after open.
    """

    def __init__(
        self,
        root: str | Path,
        max_segment_bytes: int = _DEFAULT_SEGMENT_BYTES,
        sync_appends: bool = False,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_segment_bytes = max(1 << 12, int(max_segment_bytes))
        self.sync_appends = sync_appends
        self._lock = threading.RLock()
        self._sealed: list[Segment] = []
        self._active: Segment | None = None
        self._open_all()

    # -- lifecycle ----------------------------------------------------------

    def _seg_paths(self) -> list[Path]:
        return sorted(self.root.glob("seg-*.seg"))

    def _next_number(self) -> int:
        paths = self._seg_paths()
        if not paths:
            return 0
        return max(int(p.stem.split("-")[1]) for p in paths) + 1

    def _open_all(self) -> None:
        paths = self._seg_paths()
        for path in paths[:-1]:
            seg = Segment(path, readonly=True)
            if not seg.sealed:
                # Torn or footerless file: heal it — truncate the tail,
                # rebuild and persist the index — then map read-only.
                seg.close()
                writable = Segment(path, readonly=False)
                if writable.truncated_bytes:
                    _count("truncated_bytes", writable.truncated_bytes)
                _count("recovered_segments")
                writable.seal()
                writable.close()
                seg = Segment(path, readonly=True)
            self._sealed.append(seg)
        if paths:
            active = Segment(paths[-1], readonly=False)
            if active.recovered:
                _count("recovered_segments")
                if active.truncated_bytes:
                    _count("truncated_bytes", active.truncated_bytes)
            self._active = active
        else:
            self._active = Segment(self.root / "seg-00000.seg")

    def close(self, seal: bool = True) -> None:
        """Close every segment; by default the active one is sealed
        first so the next open skips the recovery scan."""
        with self._lock:
            if self._active is not None:
                if seal and not self._active._poisoned:
                    if len(self._active):
                        self._active.seal()
                self._active.close()
                self._active = None
            for seg in self._sealed:
                seg.close()
            self._sealed.clear()

    def __enter__(self) -> "SegmentStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def flush(self, sync: bool = False) -> None:
        with self._lock:
            if self._active is not None:
                self._active.flush(sync=sync)

    def _roll_if_full(self) -> None:
        if self._active.data_end < self.max_segment_bytes:
            return
        self._active.seal()
        self._active.close()
        sealed = Segment(self._active.path, readonly=True)
        self._sealed.append(sealed)
        number = self._next_number()
        self._active = Segment(self.root / f"seg-{number:05d}.seg")
        _count("segments_rolled")

    # -- writes -------------------------------------------------------------

    def put(
        self,
        key: str | bytes,
        invariant: "TopologicalInvariant",
        instance: "SpatialInstance | None" = None,
        bbox: tuple | None = None,
        canonical_hash: str | None = None,
    ) -> int:
        """Store *invariant* under *key*; returns the encoded payload
        size in bytes.  *instance* (when given) is embedded via the
        RAI1 columnar codec and used to derive the spatial-index bbox
        unless an explicit *bbox* ``(xmin, ymin, xmax, ymax)`` is
        passed."""
        raw = _raw_key(key)
        payload = codec.encode_record(
            invariant, instance=instance, canonical_hash=canonical_hash
        )
        if bbox is None and instance is not None:
            bbox = _safe_float_bbox(instance)
        with self._lock:
            self._active.append(raw, payload, KIND_INVARIANT, bbox)
            if self.sync_appends:
                self._active.flush(sync=True)
            self._roll_if_full()
        _count("puts")
        _count("put_bytes", len(payload))
        return len(payload)

    def put_complex(self, key: str | bytes, arrays: "ComplexArrays") -> bool:
        """Store the cell complex for *key* (derived namespace key).
        Returns False when the complex is not array-encodable."""
        raw = _raw_key(key)
        payload = codec.encode_complex(arrays)
        if payload is None:
            _count("complex_fallbacks")
            return False
        with self._lock:
            self._active.append(_cx_key(raw), payload, KIND_COMPLEX)
            if self.sync_appends:
                self._active.flush(sync=True)
            self._roll_if_full()
        _count("complex_puts")
        return True

    def delete(self, key: str | bytes) -> None:
        """Tombstone *key* (and its complex, if any): subsequent gets
        miss, compaction drops the shadowed records."""
        raw = _raw_key(key)
        with self._lock:
            self._active.append(raw, b"", KIND_TOMBSTONE)
            if self._find(_cx_key(raw)) is not None:
                self._active.append(_cx_key(raw), b"", KIND_TOMBSTONE)
            self._roll_if_full()
        _count("tombstones")

    # -- reads --------------------------------------------------------------

    def _find(self, raw: bytes):
        """Newest ``(segment, entry)`` for *raw*, tombstones included."""
        active = self._active
        if active is not None:
            entry = active.get_entry(raw)
            if entry is not None:
                return active, entry
        for seg in reversed(self._sealed):
            entry = seg.get_entry(raw)
            if entry is not None:
                return seg, entry
        return None

    def get_record(self, key: str | bytes) -> codec.StoredRecord | None:
        """The newest stored record for *key*, decoded zero-copy over
        the segment mmap, or None (missing or tombstoned)."""
        raw = _raw_key(key)
        with self._lock:
            found = self._find(raw)
            if found is None or found[1].kind == KIND_TOMBSTONE:
                _count("misses")
                return None
            seg, entry = found
            payload = seg.payload(entry)
        _count("hits")
        return codec.decode_record(payload)

    def get(self, key: str | bytes) -> "TopologicalInvariant | None":
        """The newest invariant for *key*, or None."""
        record = self.get_record(key)
        if record is None:
            return None
        return record.invariant()

    def get_instance(self, key: str | bytes) -> "SpatialInstance | None":
        """The embedded geometry for *key*, when the record carries
        one."""
        record = self.get_record(key)
        if record is None or not record.has_instance:
            return None
        return record.instance()

    def get_complex(self, key: str | bytes) -> "ComplexArrays | None":
        """The stored cell complex for *key*, or None."""
        raw = _cx_key(_raw_key(key))
        with self._lock:
            found = self._find(raw)
            if found is None or found[1].kind == KIND_TOMBSTONE:
                return None
            seg, entry = found
            payload = seg.payload(entry)
        _count("complex_hits")
        return codec.decode_complex(payload)

    def __contains__(self, key: str | bytes) -> bool:
        raw = _raw_key(key)
        with self._lock:
            found = self._find(raw)
        return found is not None and found[1].kind != KIND_TOMBSTONE

    def keys(self) -> Iterator[str]:
        """Hex keys of all live invariant records, newest-wins."""
        seen: set[bytes] = set()
        with self._lock:
            segments = [self._active, *reversed(self._sealed)]
            for seg in segments:
                if seg is None:
                    continue
                for raw, entry in seg.live_items():
                    if raw in seen:
                        continue
                    seen.add(raw)
                    if entry.kind == KIND_INVARIANT:
                        yield raw.hex()

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    @property
    def nbytes(self) -> int:
        with self._lock:
            total = 0
            if self._active is not None:
                total += self._active.nbytes
            total += sum(seg.nbytes for seg in self._sealed)
            return total

    # -- window queries -----------------------------------------------------

    def window_query(
        self, xmin: float, ymin: float, xmax: float, ymax: float
    ) -> list[str]:
        """Hex keys of live instances whose stored bbox intersects the
        window — Morton-range scans over the per-segment z-order
        indexes, then a newest-wins resolve of each candidate."""
        _count("window_queries")
        candidates: set[bytes] = set()
        with self._lock:
            segments = [self._active, *self._sealed]
            for seg in segments:
                if seg is None:
                    continue
                candidates.update(
                    seg.window_candidates(xmin, ymin, xmax, ymax)
                )
            out = []
            for raw in candidates:
                found = self._find(raw)
                if found is None or found[1].kind != KIND_INVARIANT:
                    continue
                bbox = found[1].bbox
                if (
                    bbox[0] == bbox[0]  # not NaN
                    and not (
                        bbox[2] < xmin
                        or bbox[0] > xmax
                        or bbox[3] < ymin
                        or bbox[1] > ymax
                    )
                ):
                    out.append(raw.hex())
        _count("window_hits", len(out))
        out.sort()
        return out

    def window_query_scan(
        self, xmin: float, ymin: float, xmax: float, ymax: float
    ) -> list[str]:
        """The same answer by brute force: walk every record envelope
        in every segment (no index) — the baseline the benchmark pits
        the z-order index against."""
        newest: dict[bytes, tuple[int, tuple]] = {}
        scanned = 0
        with self._lock:
            segments = [*self._sealed, self._active]
            for seg in segments:
                if seg is None:
                    continue
                for raw, entry in seg.scan():
                    scanned += 1
                    newest[raw] = (entry.kind, entry.bbox)
        _count("scan_records", scanned)
        out = []
        for raw, (kind, bbox) in newest.items():
            if kind != KIND_INVARIANT or bbox[0] != bbox[0]:
                continue
            if not (
                bbox[2] < xmin
                or bbox[0] > xmax
                or bbox[3] < ymin
                or bbox[1] > ymax
            ):
                out.append(raw.hex())
        out.sort()
        return out

    # -- bulk ingest --------------------------------------------------------

    def bulk_load(
        self,
        corpus: "Iterable[SpatialInstance] | Sequence[SpatialInstance]",
        pipeline=None,
        batch_size: int = 256,
        store_geometry: bool = True,
    ) -> int:
        """Stream *corpus* through ``pipeline.compute_batch`` and
        persist every (instance, invariant) pair; returns the number of
        records written.  Duplicate geometries collapse to one record
        (same instance key, newest wins)."""
        from ..invariant.canonical import canonical_hash, instance_key
        from ..pipeline import InvariantPipeline

        if pipeline is None:
            pipeline = InvariantPipeline()
        loaded = 0
        batch: list = []

        def _drain() -> None:
            nonlocal loaded
            invariants = pipeline.compute_batch(batch)
            for inst, t in zip(batch, invariants):
                self.put(
                    instance_key(inst),
                    t,
                    instance=inst if store_geometry else None,
                    canonical_hash=canonical_hash(t),
                )
                loaded += 1
            batch.clear()

        for inst in corpus:
            batch.append(inst)
            if len(batch) >= batch_size:
                _drain()
        if batch:
            _drain()
        self.flush()
        _count("bulk_loaded", loaded)
        return loaded

    # -- compaction ---------------------------------------------------------

    def compact(self) -> dict:
        """Rewrite live records into one fresh segment and drop the
        inputs.  Returns ``{"before", "after", "live", "dropped"}``
        byte/record stats.

        Tombstones still shadowing an older record are copied into the
        output: if a crash lands after the new segment is visible but
        before the inputs are unlinked, reopening sees both and the
        delete stays in force (the survivor tombstone is dropped by the
        next compaction once nothing is left to shadow).
        """
        with self._lock:
            if self._active is not None and len(self._active):
                self._active.seal()
                self._active.close()
                self._sealed.append(
                    Segment(self._active.path, readonly=True)
                )
                self._active = None
            elif self._active is not None:
                self._active.close()
                self._active.path.unlink(missing_ok=True)
                self._active = None
            inputs = list(self._sealed)
            before = sum(seg.nbytes for seg in inputs)
            put_keys: set[bytes] = set()
            for seg in inputs:
                for raw, entry in seg.scan():
                    if entry.kind != KIND_TOMBSTONE:
                        put_keys.add(raw)
            newest: dict[bytes, tuple[Segment, object]] = {}
            for seg in inputs:  # oldest → newest; later wins
                for raw, entry in seg.live_items():
                    newest[raw] = (seg, entry)
            number = self._next_number()
            tmp = self.root / f"compact-{number:05d}.tmp"
            tmp.unlink(missing_ok=True)
            out = Segment(tmp)
            live = dropped = 0
            for raw in sorted(newest):
                seg, entry = newest[raw]
                if entry.kind == KIND_TOMBSTONE:
                    if raw in put_keys:
                        out.append(raw, b"", KIND_TOMBSTONE)
                    dropped += 1
                    continue
                out.append(
                    raw,
                    bytes(seg.payload(entry)),
                    entry.kind,
                    None if entry.bbox[0] != entry.bbox[0] else entry.bbox,
                )
                live += 1
            out.seal()
            out.close()
            final = self.root / f"seg-{number:05d}.seg"
            tmp.rename(final)
            for seg in inputs:
                seg.close()
                seg.path.unlink(missing_ok=True)
            self._sealed = [Segment(final, readonly=True)]
            self._active = Segment(
                self.root / f"seg-{number + 1:05d}.seg"
            )
            after = self._sealed[0].nbytes
        _count("compactions")
        _count("compaction_reclaimed_bytes", max(0, before - after))
        return {
            "before": before,
            "after": after,
            "live": live,
            "dropped": dropped,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SegmentStore({self.root}, {len(self._sealed)} sealed"
            f" + {'1 active' if self._active else 'no active'})"
        )
