"""The segment store: a directory of append-only segments.

:class:`SegmentStore` manages ``seg-NNNNN.seg`` files under one root
directory.  The highest-numbered segment is *active* (writable,
dict-indexed); every earlier one is *sealed* (read-only, probed through
its mmap'd footer).  When the active segment outgrows
``max_segment_bytes`` it is sealed in place and a fresh one is opened.
Reads resolve **newest-wins**: the active segment first, then sealed
segments newest to oldest; a tombstone record shadows every older
version of its key.

Values are the compact binary records of :mod:`repro.store.codec` —
invariants (with optional embedded geometry) under the caller's key,
cell complexes under a derived per-key namespace — so a ``get`` is an
index probe plus a zero-copy decode over the mmap, never a pickle.

Opening a store heals it: a segment with a torn tail (crash
mid-append) is truncated to its last fully-written record and
re-sealed, per the envelope discipline in :mod:`repro.store.segment`.
Compaction rewrites the live records into one fresh segment (newest
number, so it wins), fsyncs, then unlinks the inputs; tombstones that
still shadow an older record are carried along, which keeps deletes
in force even if a crash lands between the rename and the unlinks.

Every operation tallies into a module-level ``store.*`` counter family
registered with :mod:`repro.instrument`, so store traffic shows up in
:class:`~repro.pipeline.PipelineStats` next to ``kernel.*`` and
``cache'``s counters.
"""

from __future__ import annotations

import hashlib
import os
import threading
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from .. import faults
from ..errors import InstanceError, StoreError
from ..instrument import add_counter_source
from . import codec
from .segment import (
    KIND_COMPLEX,
    KIND_INVARIANT,
    KIND_TOMBSTONE,
    Segment,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..arrangement.soa import ComplexArrays
    from ..invariant import TopologicalInvariant
    from ..regions import SpatialInstance

__all__ = ["SegmentStore", "SYNC_POLICIES"]

_DEFAULT_SEGMENT_BYTES = 64 << 20

#: The durability contract, weakest to strongest.
#:
#: ``"never"``
#:     No fsyncs anywhere.  Crash-consistent (the envelope discipline
#:     still bounds loss to the unflushed tail) but an OS crash can
#:     lose acknowledged appends.  For scratch and bench corpora.
#: ``"seal"``
#:     The default.  Appends are buffered; sealing a segment fsyncs the
#:     data region before the footer and the footer before the trailer,
#:     so every *sealed* segment is durable and a crash loses at most
#:     the active segment's unflushed tail.
#: ``"always"``
#:     Every append is fsynced before it is acknowledged; an fsync
#:     failure drops the unacknowledged record and fails the put
#:     structurally.  Group-commit callers should batch through
#:     ``bulk_load`` (one record per fsync is the price of the
#:     guarantee).
SYNC_POLICIES = ("never", "seal", "always")

# -- store.* counters ---------------------------------------------------------

_tally_lock = threading.Lock()
_tally: dict[str, int] = {}


def _count(name: str, n: int = 1) -> None:
    with _tally_lock:
        key = f"store.{name}"
        _tally[key] = _tally.get(key, 0) + n


def _snapshot() -> dict[str, int]:
    with _tally_lock:
        return dict(_tally)


add_counter_source(_snapshot)


def _raw_key(key: str | bytes) -> bytes:
    if isinstance(key, str):
        try:
            raw = bytes.fromhex(key)
        except ValueError as exc:
            raise StoreError(f"store keys must be hex digests: {key!r}") from exc
    else:
        raw = bytes(key)
    if len(raw) != 32:
        raise StoreError(
            f"store keys must be 32 bytes (sha256); got {len(raw)}"
        )
    return raw


def _cx_key(raw: bytes) -> bytes:
    """The namespace key a complex is stored under for instance *raw*."""
    return hashlib.sha256(raw + b":complex").digest()


def _safe_float_bbox(instance) -> tuple | None:
    """The instance bbox as floats, or None when it has no finite
    float image (empty instance, astronomically large rationals)."""
    try:
        box = instance.bbox()
        return (
            float(box.xmin),
            float(box.ymin),
            float(box.xmax),
            float(box.ymax),
        )
    except (OverflowError, ValueError, ArithmeticError, InstanceError):
        return None


class SegmentStore:
    """An append-only, mmap-backed store of invariants keyed by
    ``instance_key`` digests (hex strings or raw 32-byte keys).

    Thread-safe for interleaved puts/gets under one process; the sealed
    read path is lock-free after open.
    """

    def __init__(
        self,
        root: str | Path,
        max_segment_bytes: int = _DEFAULT_SEGMENT_BYTES,
        sync_appends: bool = False,
        sync: str | None = None,
    ):
        if sync is None:
            sync = "always" if sync_appends else "seal"
        if sync not in SYNC_POLICIES:
            raise StoreError(
                f"unknown sync policy {sync!r}; expected one of "
                f"{SYNC_POLICIES}"
            )
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_segment_bytes = max(1 << 12, int(max_segment_bytes))
        self.sync = sync
        self.sync_appends = sync == "always"
        self._lock = threading.RLock()
        self._sealed: list[Segment] = []
        self._active: Segment | None = None
        self._closed = False
        # Lazy canonical-hash → keys secondary index (newest class per
        # key), built on first keys_for_class() and maintained by
        # subsequent writes.
        self._class_index: dict[str, set[str]] | None = None
        self._key_class: dict[str, str] = {}
        self._open_all()

    # -- lifecycle ----------------------------------------------------------

    def _seg_paths(self) -> list[Path]:
        return sorted(self.root.glob("seg-*.seg"))

    def _next_number(self) -> int:
        paths = self._seg_paths()
        if not paths:
            return 0
        return max(int(p.stem.split("-")[1]) for p in paths) + 1

    def _open_all(self) -> None:
        paths = self._seg_paths()
        for path in paths[:-1]:
            seg = Segment(path, readonly=True)
            if not seg.sealed:
                # Torn or footerless file: heal it — truncate the tail,
                # rebuild and persist the index — then map read-only.
                seg.close()
                writable = Segment(path, readonly=False)
                if writable.truncated_bytes:
                    _count("truncated_bytes", writable.truncated_bytes)
                _count("recovered_segments")
                try:
                    writable.seal(sync=self.sync != "never")
                except StoreError:
                    # A failed seal (full disk, injected seal crash)
                    # costs the footer, never the records: the
                    # read-only reopen below scans and indexes them.
                    _count("seal_failures")
                writable.close()
                seg = Segment(path, readonly=True)
            self._sealed.append(seg)
        if paths:
            active = Segment(paths[-1], readonly=False)
            if active.recovered:
                _count("recovered_segments")
                if active.truncated_bytes:
                    _count("truncated_bytes", active.truncated_bytes)
            self._active = active
        else:
            self._active = Segment(self.root / "seg-00000.seg")

    def close(self, seal: bool = True) -> None:
        """Close every segment; by default the active one is sealed
        first so the next open skips the recovery scan.  Idempotent —
        a second close is a no-op — and never raises on the seal: at
        close time every record is already on disk, so a footer that
        cannot be persisted is a recovery scan at the next open, not
        an error here."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._active is not None:
                if seal and not self._active._poisoned:
                    if len(self._active):
                        try:
                            self._active.seal(sync=self.sync != "never")
                        except StoreError:
                            _count("seal_failures")
                self._active.close()
                self._active = None
            for seg in self._sealed:
                seg.close()
            self._sealed.clear()

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self, op: str) -> None:
        if self._closed:
            raise StoreError(
                f"store at {self.root} is closed", op=op, path=str(self.root)
            )

    def __enter__(self) -> "SegmentStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def flush(self, sync: bool = False) -> None:
        with self._lock:
            if self._active is not None:
                self._active.flush(sync=sync)

    def _roll_if_full(self) -> None:
        if self._active is None or (
            self._active.data_end < self.max_segment_bytes
        ):
            return
        self._roll_active()

    def _roll_active(self) -> None:
        """Seal (best-effort) and retire the active segment, then open
        a fresh one.  Never raises: whatever state the old segment is
        in — cleanly sealed, seal-crashed, torn by a failed append —
        the store comes out readable, with every verifiable record
        still served."""
        active = self._active
        if active is None:
            return
        path = active.path
        sealed_ok = False
        if not active._poisoned and len(active):
            try:
                active.seal(sync=self.sync != "never")
                sealed_ok = True
            except StoreError:
                _count("seal_failures")
        active.close()
        self._active = None
        if sealed_ok:
            self._sealed.append(Segment(path, readonly=True))
        else:
            self._adopt_unsealed(path)
        try:
            number = self._next_number()
            self._active = Segment(self.root / f"seg-{number:05d}.seg")
        except (StoreError, OSError):
            # Could not even write a fresh 32-byte header (disk truly
            # full).  Reads keep working; the next successful append
            # path retries the open.
            _count("active_open_failures")
        _count("segments_rolled")

    def _fsync_dir(self) -> None:
        """fsync the store directory so renames/creates are durable.
        Best-effort: not every filesystem supports opening a directory
        for sync (and the data fsyncs already happened)."""
        try:
            fd = os.open(self.root, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform-dependent
            pass
        finally:
            os.close(fd)

    def _adopt_unsealed(self, path: Path) -> None:
        """Heal a torn or unsealed segment file in place and adopt it
        read-only; an empty file is unlinked, an unreadable one is left
        on disk for post-mortem but dropped from the serving set."""
        if not path.exists():
            return
        try:
            writable = Segment(path, readonly=False)
        except (StoreError, OSError):
            _count("unreadable_segments")
            return
        if writable.truncated_bytes:
            _count("truncated_bytes", writable.truncated_bytes)
        if writable.recovered:
            _count("recovered_segments")
        if not len(writable):
            writable.close()
            path.unlink(missing_ok=True)
            return
        try:
            writable.seal(sync=self.sync != "never")
        except StoreError:
            _count("seal_failures")
        writable.close()
        try:
            self._sealed.append(Segment(path, readonly=True))
        except (StoreError, OSError):
            _count("unreadable_segments")

    # -- writes -------------------------------------------------------------

    def _append(
        self,
        raw: bytes,
        payload: bytes,
        kind: int,
        bbox: tuple | None = None,
    ) -> None:
        """One appended record under the durability contract (caller
        holds the lock).

        An append that fails with an OS-level error (``ENOSPC``,
        ``EIO``, a lost fsync) raises the structured
        :class:`~repro.errors.StoreError` to the caller — the record
        was *not* stored — and retires the active segment: its intact
        prefix is healed and kept readable, and a fresh active segment
        is opened so subsequent puts can succeed (disk space
        permitting).  A torn append (crash model) leaves the segment
        poisoned instead — recovery is a reopen, matching the process
        restart it models.
        """
        self._check_open("append")
        if self._active is None:
            # A previous failure could not open a fresh segment; try
            # again now rather than failing every future put.
            try:
                number = self._next_number()
                self._active = Segment(self.root / f"seg-{number:05d}.seg")
            except (StoreError, OSError) as exc:
                raise StoreError(
                    f"store at {self.root} has no writable segment: {exc}",
                    op="append",
                    path=str(self.root),
                ) from exc
        try:
            self._active.append(
                raw, payload, kind, bbox, sync=self.sync == "always"
            )
        except StoreError as exc:
            _count("append_errors")
            if exc.errno is not None:
                # An OS-level failure, not a modelled crash: retire the
                # segment so the store stays serviceable.
                self._roll_active()
            raise
        self._roll_if_full()

    def put(
        self,
        key: str | bytes,
        invariant: "TopologicalInvariant",
        instance: "SpatialInstance | None" = None,
        bbox: tuple | None = None,
        canonical_hash: str | None = None,
    ) -> int:
        """Store *invariant* under *key*; returns the encoded payload
        size in bytes.  *instance* (when given) is embedded via the
        RAI1 columnar codec and used to derive the spatial-index bbox
        unless an explicit *bbox* ``(xmin, ymin, xmax, ymax)`` is
        passed."""
        raw = _raw_key(key)
        payload = codec.encode_record(
            invariant, instance=instance, canonical_hash=canonical_hash
        )
        if bbox is None and instance is not None:
            bbox = _safe_float_bbox(instance)
        with self._lock:
            self._append(raw, payload, KIND_INVARIANT, bbox)
            self._index_class(raw, payload, canonical_hash)
        _count("puts")
        _count("put_bytes", len(payload))
        return len(payload)

    def put_raw(
        self,
        raw: bytes,
        payload: bytes,
        kind: int = KIND_INVARIANT,
        bbox: tuple | None = None,
    ) -> None:
        """Append a pre-encoded record verbatim under a raw 32-byte
        key — the replication and read-repair path, where the copy must
        stay bit-identical to its source record."""
        if len(raw) != 32:
            raise StoreError("raw record keys must be 32 bytes", op="append")
        with self._lock:
            self._append(raw, payload, kind, bbox)
            if kind == KIND_INVARIANT:
                self._index_class(raw, payload, None)
            elif kind == KIND_TOMBSTONE:
                self._unindex_class(raw)
        _count("raw_puts")

    def put_complex(self, key: str | bytes, arrays: "ComplexArrays") -> bool:
        """Store the cell complex for *key* (derived namespace key).
        Returns False when the complex is not array-encodable."""
        raw = _raw_key(key)
        payload = codec.encode_complex(arrays)
        if payload is None:
            _count("complex_fallbacks")
            return False
        with self._lock:
            self._append(_cx_key(raw), payload, KIND_COMPLEX)
        _count("complex_puts")
        return True

    def delete(self, key: str | bytes) -> None:
        """Tombstone *key* (and its complex, if any): subsequent gets
        miss, compaction drops the shadowed records."""
        raw = _raw_key(key)
        with self._lock:
            self._append(raw, b"", KIND_TOMBSTONE)
            if self._find(_cx_key(raw)) is not None:
                self._append(_cx_key(raw), b"", KIND_TOMBSTONE)
            self._unindex_class(raw)
        _count("tombstones")

    # -- reads --------------------------------------------------------------

    def _find(self, raw: bytes):
        """Newest ``(segment, entry)`` for *raw*, tombstones included."""
        active = self._active
        if active is not None:
            entry = active.get_entry(raw)
            if entry is not None:
                return active, entry
        for seg in reversed(self._sealed):
            entry = seg.get_entry(raw)
            if entry is not None:
                return seg, entry
        return None

    def _payload_of(self, seg: Segment, entry, raw: bytes):
        """The checksum-verified payload for one found entry.

        A drawn ``store_read_bitflip`` fault first flips a payload byte
        *on disk* — persistent at-rest corruption — so the verified
        read that follows fails exactly the way real rot does, and
        keeps failing until a repair rewrites the record."""
        if faults.draw("store_read_bitflip", raw.hex()) is not None:
            seg.corrupt_payload_byte(entry)
        try:
            return seg.payload(entry)
        except StoreError:
            _count("read_errors")
            raise

    def get_record(self, key: str | bytes) -> codec.StoredRecord | None:
        """The newest stored record for *key*, decoded zero-copy over
        the segment mmap, or None (missing or tombstoned).  Raises a
        structured :class:`~repro.errors.StoreError` when the stored
        bytes fail their checksum — never a silently wrong record."""
        raw = _raw_key(key)
        with self._lock:
            self._check_open("read")
            found = self._find(raw)
            if found is None or found[1].kind == KIND_TOMBSTONE:
                _count("misses")
                return None
            seg, entry = found
            payload = self._payload_of(seg, entry, raw)
        _count("hits")
        return codec.decode_record(payload)

    def get_raw(
        self, key: str | bytes
    ) -> tuple[int, bytes, tuple] | None:
        """The newest raw record for *key* as ``(kind, payload bytes,
        bbox)`` — tombstones included, so a mirror can distinguish "the
        key was deleted" from "this replica missed the write".  None
        when the store never saw the key.  The payload checksum is
        verified; corrupt bytes raise rather than replicate."""
        raw = _raw_key(key)
        with self._lock:
            self._check_open("read")
            found = self._find(raw)
            if found is None:
                return None
            seg, entry = found
            if entry.kind == KIND_TOMBSTONE:
                return (KIND_TOMBSTONE, b"", entry.bbox)
            payload = self._payload_of(seg, entry, raw)
            return (entry.kind, bytes(payload), entry.bbox)

    def get(self, key: str | bytes) -> "TopologicalInvariant | None":
        """The newest invariant for *key*, or None."""
        record = self.get_record(key)
        if record is None:
            return None
        return record.invariant()

    def get_instance(self, key: str | bytes) -> "SpatialInstance | None":
        """The embedded geometry for *key*, when the record carries
        one."""
        record = self.get_record(key)
        if record is None or not record.has_instance:
            return None
        return record.instance()

    def get_complex(self, key: str | bytes) -> "ComplexArrays | None":
        """The stored cell complex for *key*, or None."""
        raw = _cx_key(_raw_key(key))
        with self._lock:
            self._check_open("read")
            found = self._find(raw)
            if found is None or found[1].kind == KIND_TOMBSTONE:
                return None
            seg, entry = found
            payload = self._payload_of(seg, entry, raw)
        _count("complex_hits")
        return codec.decode_complex(payload)

    def __contains__(self, key: str | bytes) -> bool:
        raw = _raw_key(key)
        with self._lock:
            found = self._find(raw)
        return found is not None and found[1].kind != KIND_TOMBSTONE

    def keys(self) -> Iterator[str]:
        """Hex keys of all live invariant records, newest-wins."""
        seen: set[bytes] = set()
        with self._lock:
            segments = [self._active, *reversed(self._sealed)]
            for seg in segments:
                if seg is None:
                    continue
                for raw, entry in seg.live_items():
                    if raw in seen:
                        continue
                    seen.add(raw)
                    if entry.kind == KIND_INVARIANT:
                        yield raw.hex()

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def raw_keys(self) -> Iterator[tuple[bytes, int]]:
        """``(raw key, kind)`` of the newest record per key across
        *every* namespace — invariants, complexes, and tombstones.  The
        replication/repair work list: a mirror diffs this against a
        peer to find records the peer missed."""
        seen: set[bytes] = set()
        with self._lock:
            segments = [self._active, *reversed(self._sealed)]
            for seg in segments:
                if seg is None:
                    continue
                for raw, entry in seg.live_items():
                    if raw in seen:
                        continue
                    seen.add(raw)
                    yield raw, entry.kind

    # -- canonical-hash → keys secondary index ------------------------------

    def _index_class(
        self, raw: bytes, payload: bytes, canonical_hash: str | None
    ) -> None:
        """Fold one put into the class index (caller holds the lock).
        A no-op until the index has been built — before that, the lazy
        build sees the record on disk anyway."""
        if self._class_index is None:
            return
        if canonical_hash is None:
            try:
                canonical_hash = codec.decode_record(payload).canonical_hash
            except StoreError:
                canonical_hash = None
        key = raw.hex()
        self._unindex_class(raw)
        if canonical_hash is not None:
            self._key_class[key] = canonical_hash
            self._class_index.setdefault(canonical_hash, set()).add(key)

    def _unindex_class(self, raw: bytes) -> None:
        if self._class_index is None:
            return
        key = raw.hex()
        old = self._key_class.pop(key, None)
        if old is not None:
            members = self._class_index.get(old)
            if members is not None:
                members.discard(key)
                if not members:
                    del self._class_index[old]

    def _build_class_index(self) -> None:
        """Scan live invariant records' headers once (caller holds the
        lock).  Records without a recorded canonical hash, or whose
        payload cannot be read, are skipped and counted — the scrubber
        is the place that deals with the latter."""
        index: dict[str, set[str]] = {}
        key_class: dict[str, str] = {}
        seen: set[bytes] = set()
        segments = [self._active, *reversed(self._sealed)]
        for seg in segments:
            if seg is None:
                continue
            for raw, entry in seg.live_items():
                if raw in seen:
                    continue
                seen.add(raw)
                if entry.kind != KIND_INVARIANT:
                    continue
                try:
                    record = codec.decode_record(seg.payload(entry))
                except StoreError:
                    _count("class_index_skipped")
                    continue
                ch = record.canonical_hash
                if ch is None:
                    _count("class_index_unhashed")
                    continue
                key = raw.hex()
                key_class[key] = ch
                index.setdefault(ch, set()).add(key)
        self._class_index = index
        self._key_class = key_class

    def keys_for_class(self, class_hash: str) -> list[str]:
        """Hex keys of every live instance whose stored canonical hash
        equals *class_hash* — equivalence-class lookup without touching
        the pipeline.  The index is built in memory from record headers
        on first use and maintained by subsequent puts and deletes."""
        with self._lock:
            self._check_open("read")
            if self._class_index is None:
                self._build_class_index()
            _count("class_lookups")
            return sorted(self._class_index.get(class_hash, ()))

    # -- scrub support ------------------------------------------------------

    def sealed_segments(self) -> list[Segment]:
        """A snapshot of the sealed segment set (the scrubber's work
        list; the active segment is still being written and is covered
        by its next seal)."""
        with self._lock:
            return list(self._sealed)

    def quarantine_segment(self, seg: Segment) -> Path | None:
        """Move a sealed segment's file into ``root/quarantine/`` and
        drop it from the serving set: its records no longer resolve
        (repair re-copies them from a replica or recompute), and the
        corrupt bytes are kept for post-mortem rather than re-served.
        Returns the quarantined path, or None if *seg* is not one of
        this store's sealed segments."""
        with self._lock:
            if seg not in self._sealed:
                return None
            qdir = self.root / "quarantine"
            qdir.mkdir(parents=True, exist_ok=True)
            dest = qdir / seg.path.name
            seg.close()
            try:
                os.replace(seg.path, dest)
            except OSError as exc:
                raise StoreError(
                    f"could not quarantine {seg.path.name}: {exc}",
                    op="quarantine",
                    path=str(seg.path),
                    errno=exc.errno,
                ) from exc
            self._sealed = [s for s in self._sealed if s is not seg]
            # Keys served by that segment changed out from under the
            # lazy class index; rebuild on next use.
            self._class_index = None
            self._key_class = {}
        _count("segments_quarantined")
        return dest

    @property
    def nbytes(self) -> int:
        with self._lock:
            total = 0
            if self._active is not None:
                total += self._active.nbytes
            total += sum(seg.nbytes for seg in self._sealed)
            return total

    # -- window queries -----------------------------------------------------

    def window_query(
        self, xmin: float, ymin: float, xmax: float, ymax: float
    ) -> list[str]:
        """Hex keys of live instances whose stored bbox intersects the
        window — Morton-range scans over the per-segment z-order
        indexes, then a newest-wins resolve of each candidate."""
        _count("window_queries")
        candidates: set[bytes] = set()
        with self._lock:
            segments = [self._active, *self._sealed]
            for seg in segments:
                if seg is None:
                    continue
                candidates.update(
                    seg.window_candidates(xmin, ymin, xmax, ymax)
                )
            out = []
            for raw in candidates:
                found = self._find(raw)
                if found is None or found[1].kind != KIND_INVARIANT:
                    continue
                bbox = found[1].bbox
                if (
                    bbox[0] == bbox[0]  # not NaN
                    and not (
                        bbox[2] < xmin
                        or bbox[0] > xmax
                        or bbox[3] < ymin
                        or bbox[1] > ymax
                    )
                ):
                    out.append(raw.hex())
        _count("window_hits", len(out))
        out.sort()
        return out

    def window_query_scan(
        self, xmin: float, ymin: float, xmax: float, ymax: float
    ) -> list[str]:
        """The same answer by brute force: walk every record envelope
        in every segment (no index) — the baseline the benchmark pits
        the z-order index against."""
        newest: dict[bytes, tuple[int, tuple]] = {}
        scanned = 0
        with self._lock:
            segments = [*self._sealed, self._active]
            for seg in segments:
                if seg is None:
                    continue
                for raw, entry in seg.scan():
                    scanned += 1
                    newest[raw] = (entry.kind, entry.bbox)
        _count("scan_records", scanned)
        out = []
        for raw, (kind, bbox) in newest.items():
            if kind != KIND_INVARIANT or bbox[0] != bbox[0]:
                continue
            if not (
                bbox[2] < xmin
                or bbox[0] > xmax
                or bbox[3] < ymin
                or bbox[1] > ymax
            ):
                out.append(raw.hex())
        out.sort()
        return out

    # -- bulk ingest --------------------------------------------------------

    def bulk_load(
        self,
        corpus: "Iterable[SpatialInstance] | Sequence[SpatialInstance]",
        pipeline=None,
        batch_size: int = 256,
        store_geometry: bool = True,
    ) -> int:
        """Stream *corpus* through ``pipeline.compute_batch`` and
        persist every (instance, invariant) pair; returns the number of
        records written.  Duplicate geometries collapse to one record
        (same instance key, newest wins)."""
        from ..invariant.canonical import canonical_hash, instance_key
        from ..pipeline import InvariantPipeline

        if pipeline is None:
            pipeline = InvariantPipeline()
        loaded = 0
        batch: list = []

        def _drain() -> None:
            nonlocal loaded
            invariants = pipeline.compute_batch(batch)
            for inst, t in zip(batch, invariants):
                self.put(
                    instance_key(inst),
                    t,
                    instance=inst if store_geometry else None,
                    canonical_hash=canonical_hash(t),
                )
                loaded += 1
            batch.clear()

        for inst in corpus:
            batch.append(inst)
            if len(batch) >= batch_size:
                _drain()
        if batch:
            _drain()
        self.flush()
        _count("bulk_loaded", loaded)
        return loaded

    # -- compaction ---------------------------------------------------------

    def compact(self) -> dict:
        """Rewrite live records into one fresh segment and drop the
        inputs.  Returns ``{"before", "after", "live", "dropped"}``
        byte/record stats.

        Tombstones still shadowing an older record are copied into the
        output: if a crash lands after the new segment is visible but
        before the inputs are unlinked, reopening sees both and the
        delete stays in force (the survivor tombstone is dropped by the
        next compaction once nothing is left to shadow).
        """
        with self._lock:
            self._check_open("compact")
            if self._active is not None and len(self._active):
                self._roll_active()
                if self._active is not None:
                    self._active.close()
                    self._active.path.unlink(missing_ok=True)
                    self._active = None
            elif self._active is not None:
                self._active.close()
                self._active.path.unlink(missing_ok=True)
                self._active = None
            inputs = list(self._sealed)
            before = sum(seg.nbytes for seg in inputs)
            put_keys: set[bytes] = set()
            for seg in inputs:
                for raw, entry in seg.scan():
                    if entry.kind != KIND_TOMBSTONE:
                        put_keys.add(raw)
            newest: dict[bytes, tuple[Segment, object]] = {}
            for seg in inputs:  # oldest → newest; later wins
                for raw, entry in seg.live_items():
                    newest[raw] = (seg, entry)
            number = self._next_number()
            tmp = self.root / f"compact-{number:05d}.tmp"
            tmp.unlink(missing_ok=True)
            out = Segment(tmp)
            live = dropped = skipped_corrupt = 0
            try:
                for raw in sorted(newest):
                    seg, entry = newest[raw]
                    if entry.kind == KIND_TOMBSTONE:
                        if raw in put_keys:
                            out.append(raw, b"", KIND_TOMBSTONE)
                        dropped += 1
                        continue
                    try:
                        payload = bytes(seg.payload(entry))
                    except StoreError:
                        # A record that fails its checksum must not
                        # abort the compaction (or ride along as rot):
                        # it is unreadable either way — drop it, count
                        # it, and let the scrubber's repair path bring
                        # the key back from a replica.
                        _count("compaction_skipped_corrupt")
                        skipped_corrupt += 1
                        dropped += 1
                        continue
                    out.append(
                        raw,
                        payload,
                        entry.kind,
                        None
                        if entry.bbox[0] != entry.bbox[0]
                        else entry.bbox,
                    )
                    live += 1
                out.seal(sync=self.sync != "never")
                out.close()
            except BaseException:
                # Leave the store exactly as it was: inputs untouched,
                # the half-written output removed, a fresh active
                # segment reopened.
                out.close()
                tmp.unlink(missing_ok=True)
                self._active = Segment(
                    self.root / f"seg-{self._next_number():05d}.seg"
                )
                raise
            final = self.root / f"seg-{number:05d}.seg"
            tmp.rename(final)
            # The rename must be durable before the inputs disappear —
            # otherwise a crash here could leave neither the old nor
            # the new file set discoverable.
            if self.sync != "never":
                self._fsync_dir()
            for seg in inputs:
                seg.close()
                seg.path.unlink(missing_ok=True)
            self._sealed = [Segment(final, readonly=True)]
            self._active = Segment(
                self.root / f"seg-{number + 1:05d}.seg"
            )
            after = self._sealed[0].nbytes
            if skipped_corrupt:
                # Dropped keys may still sit in the class index.
                self._class_index = None
                self._key_class = {}
        _count("compactions")
        _count("compaction_reclaimed_bytes", max(0, before - after))
        return {
            "before": before,
            "after": after,
            "live": live,
            "dropped": dropped,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SegmentStore({self.root}, {len(self._sealed)} sealed"
            f" + {'1 active' if self._active else 'no active'})"
        )
