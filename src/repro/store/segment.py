"""Append-only, mmap-able segment files for the invariant store.

One segment is one file::

    file header (32 B) | record | record | … | [footer | trailer]

Records are length-prefixed envelopes with per-record integrity, the
same discipline as the disk cache's checksummed JSON envelopes::

    u32 "REC1" | u32 payload_len | u8 kind | u8 flags | u16 pad | u32 pad
    key (32 B, raw sha256 of the content key)
    sha256(payload) (32 B)
    bbox xmin, ymin, xmax, ymax (4 × f64; NaN when unindexed)
    payload | pad to 8

The **footer** is the segment's in-file index, written when the
segment is *sealed*: an open-addressed hash table (capacity a power of
two ≥ 2 × live keys; linear probing on the key's low 64 bits) mapping
key → newest record offset, plus the z-order spatial block — record
offsets sorted by the Morton code of each bbox's quantized min corner,
with the bboxes alongside so window queries filter candidates without
touching record payloads.  A **trailer** (fixed size, at EOF) locates
the footer; footer and trailer carry their own sha256.

Crash model: appends are buffered writes with no ordering guarantees,
so a crash can tear the tail.  :meth:`Segment.open` first trusts a
valid trailer+footer (clean shutdown); otherwise it scans the records
from the top, verifying each envelope and payload checksum, and
**truncates** the file at the first torn or corrupt record — everything
fully written before the crash survives bit-identically, the torn tail
is dropped, and the index is rebuilt in memory (persisted again at the
next seal).  A sealed segment opened read-only probes its mmap'd
footer directly: point lookups are O(1) probes, no per-open scan.
"""

from __future__ import annotations

import hashlib
import json
import math
import mmap
import os
import struct
from errno import EIO, ENOSPC
from pathlib import Path
from typing import Iterator

import numpy as np

from .. import faults
from ..errors import StoreError
from . import zindex

__all__ = [
    "Segment",
    "KIND_INVARIANT",
    "KIND_COMPLEX",
    "KIND_TOMBSTONE",
]

_FILE_MAGIC = b"RSEG1\x00\x00\x00"
_FILE_HEADER = struct.Struct("<8sII16x")  # magic, version, reserved
_FILE_VERSION = 1

_REC_MAGIC = 0x31434552  # "REC1" little-endian
_REC_HEADER = struct.Struct("<IIBBH4x")  # magic, len, kind, flags, pad
_REC_FIXED = _REC_HEADER.size + 32 + 32 + 32  # + key + sha + bbox

_IDX_MAGIC = b"RIDX1\x00\x00\x00"
_TRL_MAGIC = b"RTRL1\x00\x00\x00"
_TRAILER = struct.Struct("<8sQQ")  # magic, data_end, footer_len
_TRAILER_SIZE = _TRAILER.size + 32  # + sha256

KIND_INVARIANT = 1
KIND_COMPLEX = 2
KIND_TOMBSTONE = 3
_KINDS = (KIND_INVARIANT, KIND_COMPLEX, KIND_TOMBSTONE)

_EMPTY_SHA = hashlib.sha256(b"").digest()
_NAN_BBOX = (math.nan,) * 4


def _pad8(n: int) -> int:
    return (-n) % 8


class _Entry:
    __slots__ = ("offset", "kind", "bbox")

    def __init__(self, offset: int, kind: int, bbox: tuple):
        self.offset = offset
        self.kind = kind
        self.bbox = bbox


class Segment:
    """One segment file; writable (active) or read-only (sealed).

    A writable segment keeps its index in a plain dict and appends
    records; :meth:`seal` persists the footer and flips the segment
    read-only in place.  A read-only segment with a valid footer keeps
    the index as numpy views over the mmap.
    """

    def __init__(self, path: str | os.PathLike, readonly: bool = False):
        self.path = Path(path)
        self.readonly = readonly
        self.sealed = False
        self._poisoned = False
        self.truncated_bytes = 0
        self.recovered = False
        # Writable-mode index: raw key -> newest live entry.
        self._dict: dict[bytes, _Entry] = {}
        # Sealed-mode index: mmap'd footer arrays.
        self._table_keys: np.ndarray | None = None
        self._table_offsets: np.ndarray | None = None
        self._sp_morton: np.ndarray | None = None
        self._sp_offsets: np.ndarray | None = None
        self._sp_bbox: np.ndarray | None = None
        self._sp_meta: dict | None = None
        self._open()

    # -- lifecycle ----------------------------------------------------------

    def _open(self) -> None:
        fresh = not self.path.exists()
        if fresh:
            if self.readonly:
                raise StoreError(f"no segment file at {self.path}")
            self._file = open(self.path, "w+b")
            self._file.write(
                _FILE_HEADER.pack(_FILE_MAGIC, _FILE_VERSION, 0)
            )
            self._file.flush()
            self.data_end = _FILE_HEADER.size
            self._mm: mmap.mmap | None = None
            self._mapped = 0
            return
        mode = "rb" if self.readonly else "r+b"
        self._file = open(self.path, mode)
        size = os.fstat(self._file.fileno()).st_size
        if size < _FILE_HEADER.size:
            raise StoreError(f"segment {self.path} shorter than its header")
        self._mm = None
        self._mapped = 0
        self._ensure_mapped(size)
        magic, version, _ = _FILE_HEADER.unpack_from(self._mm, 0)
        if magic != _FILE_MAGIC:
            raise StoreError(f"{self.path} is not a segment file")
        if version != _FILE_VERSION:
            raise StoreError(
                f"segment {self.path} has version {version}; expected "
                f"{_FILE_VERSION}"
            )
        if self._load_footer(size):
            self.sealed = True
            if not self.readonly:
                # Reopening a sealed segment for appends: drop the
                # footer (records keep growing past data_end) and fall
                # back to the dict index.
                self._footer_to_dict()
                self._file.seek(self.data_end)
                self._file.truncate(self.data_end)
                # The old mapping still covers the footer we just cut
                # off; reads at data_end would see those stale bytes
                # instead of fresh appends. Remap lazily.
                self._drop_map()
                self.sealed = False
        else:
            self._recover(size)

    def close(self) -> None:
        self._drop_map()
        if not self._file.closed:
            self._file.close()

    def _drop_map(self) -> None:
        """Release the mmap.  Zero-copy views handed out earlier keep
        the old mapping alive until they die (mmap refuses to close
        with exported buffers); dropping our reference is enough — the
        OS unmaps when the last view goes away."""
        if self._mm is None:
            return
        try:
            self._mm.close()
        except BufferError:
            pass
        self._mm = None
        self._mapped = 0

    def __enter__(self) -> "Segment":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _ensure_mapped(self, end: int) -> None:
        if self._mm is not None and end <= self._mapped:
            return
        if not self.readonly:
            self._file.flush()
        size = os.fstat(self._file.fileno()).st_size
        if end > size:
            raise StoreError(
                f"segment {self.path}: read past end of file"
            )
        self._drop_map()
        self._mm = mmap.mmap(
            self._file.fileno(), size, access=mmap.ACCESS_READ
        )
        self._mapped = size

    # -- recovery -----------------------------------------------------------

    def _recover(self, size: int) -> None:
        """Scan records from the top, truncating the first torn tail."""
        self.recovered = True
        offset = _FILE_HEADER.size
        good_end = offset
        while True:
            parsed = self._try_parse(offset, size)
            if parsed is None:
                break
            key, entry, end = parsed
            self._note(key, entry)
            good_end = offset = end
        if good_end < size:
            self.truncated_bytes += size - good_end
            if not self.readonly:
                self._drop_map()
                self._file.seek(good_end)
                self._file.truncate(good_end)
                self._file.flush()
        self.data_end = good_end

    def _try_parse(self, offset: int, size: int):
        """Validate the record at *offset*; None when torn or corrupt."""
        if offset + _REC_FIXED > size:
            return None
        magic, plen, kind, _flags, _pad = _REC_HEADER.unpack_from(
            self._mm, offset
        )
        if magic != _REC_MAGIC or kind not in _KINDS:
            return None
        end = offset + _REC_FIXED + plen + _pad8(plen)
        if end > size:
            return None
        base = offset + _REC_HEADER.size
        key = bytes(self._mm[base : base + 32])
        sha = bytes(self._mm[base + 32 : base + 64])
        bbox = struct.unpack_from("<4d", self._mm, base + 64)
        payload = self._mm[offset + _REC_FIXED : offset + _REC_FIXED + plen]
        if hashlib.sha256(payload).digest() != sha:
            return None
        return key, _Entry(offset, kind, bbox), end

    def _note(self, key: bytes, entry: _Entry) -> None:
        """Fold one scanned record into the dict index (newest wins)."""
        self._dict[key] = entry

    # -- appends ------------------------------------------------------------

    def append(
        self,
        key: bytes,
        payload: bytes,
        kind: int = KIND_INVARIANT,
        bbox: tuple | None = None,
        sync: bool = False,
    ) -> int:
        """Append one record; returns its file offset.

        With ``sync`` the record is flushed *and fsynced* before the
        append is acknowledged (the ``sync="always"`` durability
        policy); an fsync failure — including an injected
        ``store_fsync_lost`` — drops the unacknowledged record by
        truncating back to the pre-append length, so a raised append
        never leaves a half-durable record behind.

        A drawn ``store_torn_append`` fault writes only a prefix of the
        record and raises — modelling a crash mid-append.  The segment
        is then poisoned (no further appends); reopening the file runs
        tail truncation and recovers every record before this one.  A
        drawn ``store_disk_full`` fault raises ``ENOSPC`` exactly as a
        full filesystem would, exercising the same rollback path.
        """
        if self.readonly or self.sealed:
            raise StoreError(
                f"segment {self.path} is not writable",
                op="append",
                path=str(self.path),
            )
        if self._poisoned:
            raise StoreError(
                f"segment {self.path} tore an append; reopen to recover",
                op="append",
                path=str(self.path),
            )
        if len(key) != 32:
            raise StoreError("record keys must be 32 raw bytes", op="append")
        box = _NAN_BBOX if bbox is None else tuple(float(v) for v in bbox)
        record = b"".join(
            (
                _REC_HEADER.pack(_REC_MAGIC, len(payload), kind, 0, 0),
                key,
                hashlib.sha256(payload).digest(),
                struct.pack("<4d", *box),
                payload,
                b"\0" * _pad8(len(payload)),
            )
        )
        offset = self.data_end
        self._file.seek(offset)
        fault = faults.draw("store_torn_append", key.hex())
        if fault is not None:
            torn = max(_REC_HEADER.size, len(record) // 2)
            self._file.write(record[:torn])
            self._file.flush()
            self._poisoned = True
            raise StoreError(
                f"injected torn append in {self.path.name} "
                f"({torn}/{len(record)} bytes written)",
                op="append",
                path=str(self.path),
            )
        try:
            if faults.draw("store_disk_full", key.hex()) is not None:
                raise OSError(ENOSPC, "injected disk full")
            self._file.write(record)
            if sync:
                self._file.flush()
                if faults.draw("store_fsync_lost", key.hex()) is not None:
                    raise OSError(EIO, "injected lost fsync")
                os.fsync(self._file.fileno())
        except OSError as exc:
            self._rollback_to(offset)
            raise StoreError(
                f"append to {self.path} failed: {exc}",
                op="append",
                path=str(self.path),
                errno=exc.errno,
            ) from exc
        self.data_end = offset + len(record)
        self._note(key, _Entry(offset, kind, tuple(box)))
        return offset

    def _rollback_to(self, offset: int) -> None:
        """Drop everything past *offset* (a failed, unacknowledged
        append).  When even the truncate fails the segment is poisoned:
        its tail is untrusted until a reopen re-scans it."""
        try:
            self._file.seek(offset)
            self._file.truncate(offset)
            self._file.flush()
        except OSError:
            self._poisoned = True

    def flush(self, sync: bool = False) -> None:
        self._file.flush()
        if sync:
            os.fsync(self._file.fileno())

    # -- reads --------------------------------------------------------------

    def get_entry(self, key: bytes) -> _Entry | None:
        """Newest entry for *key* (tombstones included), or None."""
        if self.sealed:
            offset = self._probe(key)
            if offset == 0:
                return None
            _k, entry, _end = self._parse_at(offset)
            return entry
        return self._dict.get(key)

    def _probe(self, key: bytes) -> int:
        keys, offsets = self._table_keys, self._table_offsets
        cap = len(offsets)
        if cap == 0:
            return 0
        slot = int.from_bytes(key[:8], "little") & (cap - 1)
        for _ in range(cap):
            offset = int(offsets[slot])
            if offset == 0:
                return 0
            if keys[slot].tobytes() == key:
                return offset
            slot = (slot + 1) & (cap - 1)
        return 0

    def _parse_at(self, offset: int):
        self._ensure_mapped(min(self._mapped or 0, 0) or offset + _REC_FIXED)
        self._ensure_mapped(offset + _REC_FIXED)
        magic, plen, kind, _flags, _pad = _REC_HEADER.unpack_from(
            self._mm, offset
        )
        if magic != _REC_MAGIC or kind not in _KINDS:
            raise StoreError(
                f"no record at offset {offset} of {self.path.name}"
            )
        end = offset + _REC_FIXED + plen
        self._ensure_mapped(end)
        base = offset + _REC_HEADER.size
        key = bytes(self._mm[base : base + 32])
        bbox = struct.unpack_from("<4d", self._mm, base + 64)
        return key, _Entry(offset, kind, bbox), end + _pad8(plen)

    def payload(self, entry: _Entry, verify: bool = True) -> memoryview:
        """The record payload at *entry* as an mmap-backed view."""
        offset = entry.offset
        self._ensure_mapped(offset + _REC_FIXED)
        _magic, plen, _kind, _f, _p = _REC_HEADER.unpack_from(
            self._mm, offset
        )
        self._ensure_mapped(offset + _REC_FIXED + plen)
        view = memoryview(self._mm)[
            offset + _REC_FIXED : offset + _REC_FIXED + plen
        ]
        if verify:
            base = offset + _REC_HEADER.size
            sha = bytes(self._mm[base + 32 : base + 64])
            if hashlib.sha256(view).digest() != sha:
                raise StoreError(
                    f"payload checksum mismatch at offset {offset} of "
                    f"{self.path.name}"
                )
        return view

    def scan(self) -> Iterator[tuple[bytes, _Entry]]:
        """Every record in file order (including superseded versions) —
        the no-index baseline and the compactor's input."""
        offset = _FILE_HEADER.size
        self._ensure_mapped(self.data_end)
        while offset < self.data_end:
            key, entry, end = self._parse_at(offset)
            yield key, entry
            offset = end

    # -- integrity verification (the scrubber's read side) -------------------

    def verify_records(
        self, offset: int | None = None, limit: int | None = None
    ) -> tuple[list[dict], int | None, int]:
        """Verify up to *limit* record envelopes and payload checksums
        starting at *offset* (default: the first record).

        Returns ``(defects, next_offset, verified)``: the defects found
        (dicts with ``type``/``offset``/``key``), the offset to resume
        from (None when the walk reached ``data_end``), and how many
        records verified clean.  A payload checksum mismatch is
        recoverable (``type="payload"``; the walk continues at the next
        envelope); a torn or garbled envelope is not (``type="envelope"``;
        the walk stops — nothing after it can be trusted).
        """
        pos = _FILE_HEADER.size if offset is None else offset
        defects: list[dict] = []
        verified = 0
        size = self.data_end
        self._ensure_mapped(size)
        while pos < size and (limit is None or verified + len(defects) < limit):
            if pos + _REC_FIXED > size:
                defects.append(
                    {"type": "envelope", "offset": pos, "key": None}
                )
                return defects, None, verified
            magic, plen, kind, _flags, _pad = _REC_HEADER.unpack_from(
                self._mm, pos
            )
            end = pos + _REC_FIXED + plen + _pad8(plen)
            if magic != _REC_MAGIC or kind not in _KINDS or end > size:
                defects.append(
                    {"type": "envelope", "offset": pos, "key": None}
                )
                return defects, None, verified
            base = pos + _REC_HEADER.size
            key = bytes(self._mm[base : base + 32])
            sha = bytes(self._mm[base + 32 : base + 64])
            payload = self._mm[pos + _REC_FIXED : pos + _REC_FIXED + plen]
            if hashlib.sha256(payload).digest() != sha:
                defects.append(
                    {"type": "payload", "offset": pos, "key": key.hex()}
                )
            else:
                verified += 1
            pos = end
        return defects, (pos if pos < size else None), verified

    def verify_footer(self) -> bool:
        """Re-verify the sealed footer + trailer checksums against the
        bytes on disk (at-rest corruption detection).  True for an
        unsealed segment — it has no footer to rot."""
        if not self.sealed:
            return True
        size = os.fstat(self._file.fileno()).st_size
        if size < _FILE_HEADER.size + _TRAILER_SIZE:
            return False
        self._ensure_mapped(size)
        t0 = size - _TRAILER_SIZE
        magic, data_end, footer_len = _TRAILER.unpack_from(self._mm, t0)
        sha = bytes(self._mm[t0 + _TRAILER.size : t0 + _TRAILER_SIZE])
        if (
            magic != _TRL_MAGIC
            or hashlib.sha256(self._mm[t0 : t0 + _TRAILER.size]).digest()
            != sha
            or data_end + footer_len + _TRAILER_SIZE != size
        ):
            return False
        body = memoryview(self._mm)[data_end : data_end + footer_len]
        if len(body) < 44 or bytes(body[:8]) != _IDX_MAGIC:
            return False
        return hashlib.sha256(body[:-32]).digest() == bytes(body[-32:])

    def corrupt_payload_byte(self, entry: _Entry, mask: int = 0x01) -> None:
        """Flip one byte of *entry*'s payload **on disk** — persistent
        at-rest corruption, as a failing sector would leave it.  The
        ``store_read_bitflip`` fault point and the corruption tests
        share this path so injected rot is bit-identical to real rot."""
        offset = entry.offset
        self._ensure_mapped(offset + _REC_FIXED)
        _magic, plen, _kind, _f, _p = _REC_HEADER.unpack_from(
            self._mm, offset
        )
        if plen == 0:
            return  # a tombstone has no payload byte to rot
        pos = offset + _REC_FIXED + plen // 2
        with open(self.path, "r+b") as f:
            f.seek(pos)
            byte = f.read(1)
            f.seek(pos)
            f.write(bytes((byte[0] ^ (mask or 0x01),)))
            f.flush()
        # The page cache makes the flip visible through the existing
        # mapping, but drop it anyway so no view caches clean bytes.
        self._drop_map()

    def live_items(self) -> Iterator[tuple[bytes, _Entry]]:
        """Newest entry per key (tombstones included, shadowed versions
        skipped)."""
        if self.sealed:
            for offset in self._live_offsets():
                key, entry, _end = self._parse_at(int(offset))
                yield key, entry
        else:
            yield from self._dict.items()

    def _live_offsets(self) -> np.ndarray:
        offsets = self._table_offsets
        return offsets[offsets != 0]

    def __len__(self) -> int:
        if self.sealed:
            return int(np.count_nonzero(self._table_offsets))
        return len(self._dict)

    @property
    def nbytes(self) -> int:
        return os.fstat(self._file.fileno()).st_size

    # -- window queries -----------------------------------------------------

    def window_candidates(
        self, xmin: float, ymin: float, xmax: float, ymax: float
    ) -> list[bytes]:
        """Keys of live invariant records whose bbox intersects the
        window.  Sealed segments run the Morton-range scan; a writable
        segment (index not yet quantized) masks its entries directly."""
        out: list[bytes] = []
        if not self.sealed:
            for key, entry in self._dict.items():
                if entry.kind == KIND_INVARIANT and _intersects(
                    entry.bbox, xmin, ymin, xmax, ymax
                ):
                    out.append(key)
            return out
        morton, offsets, boxes = (
            self._sp_morton,
            self._sp_offsets,
            self._sp_bbox,
        )
        if morton is None or len(morton) == 0:
            return out
        meta = self._sp_meta
        x0, y0, sx, sy = meta["bounds"]
        dx, dy = meta["ext"]
        # A box reaches the window only if its min corner lies in the
        # window grown left/down by the largest stored extent.
        qx0 = zindex.quantize(np.array([xmin - dx]), x0, sx)[0]
        qy0 = zindex.quantize(np.array([ymin - dy]), y0, sy)[0]
        qx1 = zindex.quantize(np.array([xmax]), x0, sx)[0]
        qy1 = zindex.quantize(np.array([ymax]), y0, sy)[0]
        for lo, hi in zindex.morton_ranges(
            int(qx0), int(qx1), int(qy0), int(qy1)
        ):
            a = int(np.searchsorted(morton, lo, side="left"))
            b = int(np.searchsorted(morton, hi, side="left"))
            if a == b:
                continue
            cand = boxes[a:b]
            hit = ~(
                (cand[:, 2] < xmin)
                | (cand[:, 0] > xmax)
                | (cand[:, 3] < ymin)
                | (cand[:, 1] > ymax)
            )
            for offset in offsets[a:b][hit]:
                key, _entry, _end = self._parse_at(int(offset))
                out.append(key)
        return out

    # -- sealing ------------------------------------------------------------

    def seal(self, sync: bool = True) -> None:
        """Persist the footer + trailer and flip read-only in place.

        Ordering is what makes the seal crash-safe: the data region is
        fsynced *before* the footer is written, and the footer is
        flushed *before* the trailer that makes it discoverable — so a
        crash at any point leaves either a valid sealed file or a
        trailer-less one that the recovery scan heals without losing a
        record.  ``sync=False`` (the ``sync="never"`` store policy)
        skips the fsyncs but keeps the write ordering.
        """
        if self.readonly or self.sealed:
            return
        if self._poisoned:
            raise StoreError(
                f"segment {self.path} tore an append; reopen to recover",
                op="seal",
                path=str(self.path),
            )
        # (1) The data region must be durable before anything points
        # at it.  An fsync failure here means the records themselves
        # are of unknown durability: leave the segment unsealed (the
        # recovery scan trusts only what it can checksum).
        try:
            self._file.flush()
            if sync:
                if faults.draw("store_fsync_lost", self.path.name) is not None:
                    raise OSError(EIO, "injected lost fsync")
                os.fsync(self._file.fileno())
        except OSError as exc:
            raise StoreError(
                f"seal of {self.path} could not sync its data: {exc}",
                op="fsync",
                path=str(self.path),
                errno=exc.errno,
            ) from exc
        footer = self._build_footer()
        try:
            # (2) Footer bytes, flushed before the trailer exists.
            self._file.seek(self.data_end)
            self._file.write(footer)
            self._file.flush()
            if faults.draw("store_seal_crash", self.path.name) is not None:
                self._poisoned = True
                raise StoreError(
                    f"injected crash sealing {self.path.name} (footer "
                    "written, trailer missing)",
                    op="seal",
                    path=str(self.path),
                )
            # (3) The trailer commits the seal.
            trailer = _TRAILER.pack(_TRL_MAGIC, self.data_end, len(footer))
            self._file.write(trailer + hashlib.sha256(trailer).digest())
            self._file.flush()
            if sync:
                os.fsync(self._file.fileno())
        except OSError as exc:
            self._poisoned = True
            raise StoreError(
                f"seal of {self.path} failed: {exc}",
                op="seal",
                path=str(self.path),
                errno=exc.errno,
            ) from exc
        size = self.data_end + len(footer) + _TRAILER_SIZE
        self._ensure_mapped(size)
        self._load_footer(size)
        self._dict.clear()
        self.sealed = True

    def _build_footer(self) -> bytes:
        n = len(self._dict)
        cap = 8
        while cap < 2 * n:
            cap *= 2
        keys = np.zeros((cap, 32), dtype=np.uint8)
        offsets = np.zeros(cap, dtype="<u8")
        for key, entry in self._dict.items():
            slot = int.from_bytes(key[:8], "little") & (cap - 1)
            while offsets[slot] != 0:
                slot = (slot + 1) & (cap - 1)
            keys[slot] = np.frombuffer(key, dtype=np.uint8)
            offsets[slot] = entry.offset

        rows = [
            (entry.offset, *entry.bbox)
            for entry in self._dict.values()
            if entry.kind == KIND_INVARIANT
            and not math.isnan(entry.bbox[0])
        ]
        if rows:
            arr = np.array(rows, dtype=np.float64)
            boxes = arr[:, 1:5]
            x0 = float(boxes[:, 0].min())
            y0 = float(boxes[:, 1].min())
            xspan = max(float(boxes[:, 2].max()) - x0, 1e-9)
            yspan = max(float(boxes[:, 3].max()) - y0, 1e-9)
            sx = (zindex.GRID_CELLS - 1) / xspan
            sy = (zindex.GRID_CELLS - 1) / yspan
            codes = zindex.morton_codes(
                zindex.quantize(boxes[:, 0], x0, sx),
                zindex.quantize(boxes[:, 1], y0, sy),
            )
            order = np.argsort(codes, kind="stable")
            sp_morton = codes[order].astype("<u8")
            sp_offsets = arr[order, 0].astype("<u8")
            sp_bbox = boxes[order].astype("<f8")
            ext = [
                float((boxes[:, 2] - boxes[:, 0]).max()),
                float((boxes[:, 3] - boxes[:, 1]).max()),
            ]
            bounds = [x0, y0, sx, sy]
        else:
            sp_morton = np.zeros(0, dtype="<u8")
            sp_offsets = np.zeros(0, dtype="<u8")
            sp_bbox = np.zeros((0, 4), dtype="<f8")
            bounds = [0.0, 0.0, 1.0, 1.0]
            ext = [0.0, 0.0]
        meta = json.dumps(
            {
                "v": 1,
                "n": n,
                "cap": cap,
                "ns": int(len(sp_morton)),
                "bounds": bounds,
                "ext": ext,
            },
            separators=(",", ":"),
        ).encode("utf-8")
        head = _IDX_MAGIC + struct.pack("<I", len(meta)) + meta
        body = b"".join(
            (
                head,
                b"\0" * _pad8(len(head)),
                keys.tobytes(),
                offsets.tobytes(),
                sp_morton.tobytes(),
                sp_offsets.tobytes(),
                sp_bbox.tobytes(),
            )
        )
        return body + hashlib.sha256(body).digest()

    def _load_footer(self, size: int) -> bool:
        """Map the footer index if the trailer validates; else False."""
        if size < _FILE_HEADER.size + _TRAILER_SIZE:
            self.data_end = size
            return False
        self._ensure_mapped(size)
        t0 = size - _TRAILER_SIZE
        magic, data_end, footer_len = _TRAILER.unpack_from(self._mm, t0)
        sha = bytes(self._mm[t0 + _TRAILER.size : t0 + _TRAILER_SIZE])
        if (
            magic != _TRL_MAGIC
            or hashlib.sha256(self._mm[t0 : t0 + _TRAILER.size]).digest()
            != sha
            or data_end + footer_len + _TRAILER_SIZE != size
            or data_end < _FILE_HEADER.size
        ):
            self.data_end = size
            return False
        body = memoryview(self._mm)[data_end : data_end + footer_len]
        if len(body) < 44 or bytes(body[:8]) != _IDX_MAGIC:
            self.data_end = size
            return False
        if hashlib.sha256(body[:-32]).digest() != bytes(body[-32:]):
            self.data_end = size
            return False
        (meta_len,) = struct.unpack_from("<I", body, 8)
        try:
            meta = json.loads(bytes(body[12 : 12 + meta_len]))
        except ValueError:
            self.data_end = size
            return False
        off = 12 + meta_len + _pad8(12 + meta_len)
        cap, ns = meta["cap"], meta["ns"]
        self._table_keys = np.frombuffer(
            body, dtype=np.uint8, count=cap * 32, offset=off
        ).reshape(cap, 32)
        off += cap * 32
        self._table_offsets = np.frombuffer(
            body, dtype="<u8", count=cap, offset=off
        )
        off += cap * 8
        self._sp_morton = np.frombuffer(
            body, dtype="<u8", count=ns, offset=off
        )
        off += ns * 8
        self._sp_offsets = np.frombuffer(
            body, dtype="<u8", count=ns, offset=off
        )
        off += ns * 8
        self._sp_bbox = np.frombuffer(
            body, dtype="<f8", count=ns * 4, offset=off
        ).reshape(ns, 4)
        self._sp_meta = meta
        self.data_end = data_end
        return True

    def _footer_to_dict(self) -> None:
        for offset in self._live_offsets():
            key, entry, _end = self._parse_at(int(offset))
            self._dict[key] = entry
        self._table_keys = None
        self._table_offsets = None
        self._sp_morton = None
        self._sp_offsets = None
        self._sp_bbox = None
        self._sp_meta = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "sealed" if self.sealed else "active"
        return f"Segment({self.path.name}, {state}, {len(self)} keys)"


def _intersects(
    bbox: tuple, xmin: float, ymin: float, xmax: float, ymax: float
) -> bool:
    if math.isnan(bbox[0]):
        return False
    return not (
        bbox[2] < xmin or bbox[0] > xmax or bbox[3] < ymin or bbox[1] > ymax
    )
