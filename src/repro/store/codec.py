"""Binary record codecs for the persistent invariant store.

Two record bodies, both following the :mod:`repro.io.array_io` RAI1
discipline — a tiny JSON *shape* header (magic, length, pad to 8) with
every bulk quantity in flat little-endian numpy blocks decoded by
``np.frombuffer`` views (zero-copy when the source is an mmap window):

**Invariant records** (``RTI1``) hold one ``T_I`` as struct-of-arrays:
cells are ordinals (vertices, edges, faces each in sorted-id order,
concatenated into one global numbering), labels a dense ``(n, n_names)``
uint8 matrix of location codes, endpoints/incidence/orientation int32
index rows.  Cell-id *strings* are deliberately not stored: ``T_I`` is
a relational structure whose identity is its canonical form, so the
decoder materializes fresh dense ids (``v0…``, ``e0…``, ``f0…``) — the
round trip is canonically bit-identical (equal
:func:`~repro.invariant.canonical.canonical_hash`), not string-identical.
An invariant whose labels fall outside the ``o/b/e`` alphabet or whose
counts overflow int32 is carried as a lossless JSON payload instead
(``"k": "json"`` in the header) — same fallback contract as the RAI1
instance codec.  A record optionally carries the source instance's
geometry (the RAI1 buffer, or JSON for non-closed-form regions), which
is what lets :meth:`repro.service.QueryService.register` resolve an
instance straight from the store.

**Complex records** (``RCX1``) hold one
:class:`~repro.arrangement.soa.ComplexArrays` — the combinatorial
arrays verbatim plus the exact rational witnesses flattened into one
int64 ``(k, 2)`` ``(numerator, denominator)`` block, the RAI1 rational
encoding extended to whole complexes.  Decoding rebuilds the
combinatorial arrays as zero-copy views over the buffer; coordinates
beyond ``2**62`` make :func:`encode_complex` return ``None`` (the
caller skips or stores the invariant only).
"""

from __future__ import annotations

import json
import struct
from fractions import Fraction

import numpy as np

from ..arrangement.soa import LABEL_CHARS, LABEL_CODES, ComplexArrays
from ..errors import StoreError
from ..geometry import Point
from ..invariant.structure import CCW, CW, TopologicalInvariant
from ..regions import SpatialInstance

__all__ = [
    "encode_record",
    "decode_record",
    "StoredRecord",
    "encode_complex",
    "decode_complex",
]

_INV_MAGIC = b"RTI1"
_CX_MAGIC = b"RCX1"
_COORD_LIMIT = 1 << 62
_I32_MAX = (1 << 31) - 1
_SENSE_CODES = {CW: 0, CCW: 1}
_SENSE_CHARS = (CW, CCW)


def _pad8(n: int) -> int:
    return (-n) % 8


def _frame(magic: bytes, header: dict, blocks: list[bytes]) -> bytes:
    text = json.dumps(header, separators=(",", ":")).encode("utf-8")
    parts = [magic, struct.pack("<I", len(text)), text, b"\0" * _pad8(len(magic) + 4 + len(text))]
    for block in blocks:
        parts.append(block)
        parts.append(b"\0" * _pad8(len(block)))
    return b"".join(parts)


def _unframe(buf, magic: bytes) -> tuple[dict, memoryview, int]:
    """Header dict, the full buffer view, and the first block offset.

    Raises :class:`StoreError` on truncated or garbled framing — a
    record that passed its envelope checksum but cannot be parsed is a
    codec bug or a hostile edit, never silently skipped.
    """
    view = memoryview(buf)
    if len(view) < 8:
        raise StoreError("record too short for a codec header")
    if bytes(view[:4]) != magic:
        raise StoreError(
            f"bad record magic {bytes(view[:4])!r}; expected {magic!r}"
        )
    (header_len,) = struct.unpack("<I", view[4:8])
    if 8 + header_len > len(view):
        raise StoreError("record header runs past the buffer")
    try:
        header = json.loads(bytes(view[8 : 8 + header_len]).decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise StoreError(f"garbled record header: {exc}") from exc
    if not isinstance(header, dict):
        raise StoreError("record header is not an object")
    return header, view, 8 + header_len + _pad8(8 + header_len)


def _take(view: memoryview, offset: int, dtype: str, count: int, shape):
    """An aligned ``np.frombuffer`` view; bounds-checked."""
    itemsize = np.dtype(dtype).itemsize
    end = offset + itemsize * count
    if end > len(view):
        raise StoreError("record block runs past the buffer")
    arr = np.frombuffer(view, dtype=dtype, count=count, offset=offset)
    return arr.reshape(shape), end


# ---------------------------------------------------------------------------
# Invariant records.
# ---------------------------------------------------------------------------


def _soa_encodable(t: TopologicalInvariant) -> bool:
    if len(t.vertices) + len(t.edges) + len(t.faces) > _I32_MAX:
        return False
    m = len(t.names)
    for label in t.labels.values():
        if len(label) != m or any(ch not in LABEL_CODES for ch in label):
            return False
    for sense, *_rest in t.orientation:
        if sense not in _SENSE_CODES:
            return False
    return True


def _instance_block(instance: SpatialInstance | None) -> tuple[list, list[bytes]]:
    if instance is None:
        return None, []
    from ..io import instance_to_buffer, instance_to_json

    blob = instance_to_buffer(instance)
    if blob is not None:
        return ["rai", len(blob)], [blob]
    text = instance_to_json(instance).encode("utf-8")
    return ["json", len(text)], [text]


def encode_record(
    t: TopologicalInvariant,
    instance: SpatialInstance | None = None,
    canonical_hash: str | None = None,
) -> bytes:
    """One invariant-record body: ``T_I`` (struct-of-arrays when the
    labels are standard, lossless JSON otherwise), plus the source
    instance's geometry and precomputed canonical hash when given."""
    inst_spec, inst_blocks = _instance_block(instance)
    if not _soa_encodable(t):
        from ..io import invariant_to_json

        payload = invariant_to_json(t).encode("utf-8")
        header = {"v": 1, "k": "json", "jlen": len(payload)}
        if canonical_hash is not None:
            header["ch"] = canonical_hash
        if inst_spec is not None:
            header["inst"] = inst_spec
        return _frame(_INV_MAGIC, header, [payload, *inst_blocks])

    verts = sorted(t.vertices)
    edges = sorted(t.edges)
    faces = sorted(t.faces)
    pos = {c: i for i, c in enumerate(verts)}
    for c in edges:
        pos[c] = len(pos)
    for c in faces:
        pos[c] = len(pos)
    names = list(t.names)
    n = len(pos)

    labels = np.empty((n, len(names)), dtype=np.uint8)
    for c, i in pos.items():
        labels[i] = [LABEL_CODES[ch] for ch in t.labels[c]]

    # Endpoint rows: (v1, v2) for a two-endpoint edge, (v, -1) for a
    # loop at one vertex, (-2, -2) for an *empty* entry (a free loop:
    # present in the mapping with no vertices), (-1, -1) for an edge
    # with no entry at all.  canonical_form distinguishes the last two,
    # so the codec must round-trip them faithfully.
    endpoints = np.full((len(edges), 2), -1, dtype="<i4")
    for k, e in enumerate(edges):
        if e not in t.endpoints:
            continue
        vs = t.endpoints[e]
        if not vs:
            endpoints[k] = (-2, -2)
            continue
        for j, v in enumerate(vs[:2]):
            endpoints[k, j] = pos[v]

    incidence = np.array(
        sorted((pos[a], pos[b]) for a, b in t.incidences), dtype="<i4"
    ).reshape(len(t.incidences), 2)

    orientation = np.array(
        sorted(
            (_SENSE_CODES[s], pos[v], pos[e1], pos[e2])
            for (s, v, e1, e2) in t.orientation
        ),
        dtype="<i4",
    ).reshape(len(t.orientation), 4)

    header = {
        "v": 1,
        "k": "soa",
        "names": names,
        "nv": len(verts),
        "ne": len(edges),
        "nf": len(faces),
        "ext": len(verts) + len(edges) + faces.index(t.exterior_face),
        "ninc": len(t.incidences),
        "nori": len(t.orientation),
    }
    if canonical_hash is not None:
        header["ch"] = canonical_hash
    if inst_spec is not None:
        header["inst"] = inst_spec
    ints = b"".join(
        (endpoints.tobytes(), incidence.tobytes(), orientation.tobytes())
    )
    return _frame(_INV_MAGIC, header, [ints, labels.tobytes(), *inst_blocks])


class StoredRecord:
    """A decoded invariant-record body.

    Lazy on both axes: :meth:`invariant` materializes the ``T_I``
    relational structure, :meth:`instance` the stored geometry (or
    ``None`` when the record carries none), and :attr:`canonical_hash`
    is the precomputed hash if one was stored.  The underlying numpy
    blocks are views over the source buffer — valid only while the
    owning segment stays open.
    """

    __slots__ = ("_header", "_view", "_offset")

    def __init__(self, header: dict, view: memoryview, offset: int):
        self._header = header
        self._view = view
        self._offset = offset

    @property
    def kind(self) -> str:
        return self._header["k"]

    @property
    def canonical_hash(self) -> str | None:
        return self._header.get("ch")

    @property
    def has_instance(self) -> bool:
        return self._header.get("inst") is not None

    def _blocks_end(self) -> int:
        h = self._header
        if h["k"] == "json":
            return self._offset + h["jlen"] + _pad8(h["jlen"])
        ints = 4 * (2 * h["ne"] + 2 * h["ninc"] + 4 * h["nori"])
        nlab = (h["nv"] + h["ne"] + h["nf"]) * len(h["names"])
        return (
            self._offset + ints + _pad8(ints) + nlab + _pad8(nlab)
        )

    def invariant(self) -> TopologicalInvariant:
        # A bit-flipped header passes JSON parsing but yields wrong
        # keys/types; surface that structurally, not as KeyError.
        try:
            return self._invariant()
        except StoreError:
            raise
        except (KeyError, TypeError, ValueError, OverflowError) as exc:
            raise StoreError(f"malformed invariant record: {exc}") from exc

    def _invariant(self) -> TopologicalInvariant:
        h = self._header
        if h["k"] == "json":
            from ..io import invariant_from_json

            end = self._offset + h["jlen"]
            if end > len(self._view):
                raise StoreError("record JSON payload runs past the buffer")
            return invariant_from_json(
                bytes(self._view[self._offset : end]).decode("utf-8")
            )
        if h["k"] != "soa":
            raise StoreError(f"unknown invariant record kind {h['k']!r}")
        nv, ne, nf = h["nv"], h["ne"], h["nf"]
        n = nv + ne + nf
        off = self._offset
        endpoints, off = _take(self._view, off, "<i4", 2 * ne, (ne, 2))
        incidence, off = _take(
            self._view, off, "<i4", 2 * h["ninc"], (h["ninc"], 2)
        )
        orientation, off = _take(
            self._view, off, "<i4", 4 * h["nori"], (h["nori"], 4)
        )
        off += _pad8(off - self._offset)
        labels, off = _take(
            self._view, off, "u1", n * len(h["names"]), (n, len(h["names"]))
        )
        # Fresh dense ids, ordinal = position in sorted-id order (the
        # encoder's convention), so index round trips are exact.
        verts = sorted(f"v{i}" for i in range(nv))
        edges = sorted(f"e{i}" for i in range(ne))
        faces = sorted(f"f{i}" for i in range(nf))
        ids = verts + edges + faces
        if not 0 <= h["ext"] - nv - ne < nf:
            raise StoreError("exterior-face ordinal out of range")
        chars = labels.tolist()
        try:
            label_map = {
                ids[i]: tuple(LABEL_CHARS[code] for code in row)
                for i, row in enumerate(chars)
            }
        except IndexError as exc:
            raise StoreError("label code out of range") from exc
        ep_map: dict[str, tuple[str, ...]] = {}
        for k, (a, b) in enumerate(endpoints.tolist()):
            if a == -1:
                continue
            if a == -2:
                ep_map[edges[k]] = ()  # free loop: present, no vertices
                continue
            if a < 0 or a >= len(ids) or b >= len(ids):
                raise StoreError("endpoint ordinal out of range")
            vs = (ids[a],) if b < 0 else tuple(sorted((ids[a], ids[b])))
            ep_map[edges[k]] = vs
        try:
            inc = frozenset(
                (ids[a], ids[b]) for a, b in incidence.tolist()
            )
            ori = frozenset(
                (_SENSE_CHARS[s], ids[v], ids[e1], ids[e2])
                for s, v, e1, e2 in orientation.tolist()
            )
        except IndexError as exc:
            raise StoreError("cell ordinal out of range") from exc
        return TopologicalInvariant(
            names=tuple(h["names"]),
            vertices=frozenset(verts),
            edges=frozenset(edges),
            faces=frozenset(faces),
            exterior_face=ids[h["ext"]],
            labels=label_map,
            endpoints=ep_map,
            incidences=inc,
            orientation=ori,
        )

    def instance(self) -> SpatialInstance | None:
        try:
            return self._instance()
        except StoreError:
            raise
        except (KeyError, TypeError, ValueError, OverflowError) as exc:
            raise StoreError(f"malformed instance block: {exc}") from exc

    def _instance(self) -> SpatialInstance | None:
        spec = self._header.get("inst")
        if spec is None:
            return None
        kind, length = spec
        start = self._blocks_end()
        end = start + length
        if end > len(self._view):
            raise StoreError("record instance block runs past the buffer")
        window = self._view[start:end]
        if kind == "rai":
            from ..io import instance_from_buffer

            return instance_from_buffer(window)
        if kind == "json":
            from ..io import instance_from_json

            return instance_from_json(bytes(window).decode("utf-8"))
        raise StoreError(f"unknown instance block kind {kind!r}")


def decode_record(buf) -> StoredRecord:
    """Decode an invariant-record body (see :func:`encode_record`)."""
    header, view, offset = _unframe(buf, _INV_MAGIC)
    if header.get("v") != 1:
        raise StoreError(f"unknown invariant record version {header.get('v')!r}")
    if header.get("k") not in ("soa", "json"):
        raise StoreError(f"unknown invariant record kind {header.get('k')!r}")
    return StoredRecord(header, view, offset)


# ---------------------------------------------------------------------------
# Complex records.
# ---------------------------------------------------------------------------


def _push_rationals(rows: list[tuple[int, int]], points) -> bool:
    for p in points:
        for value in (p.x, p.y):
            num, den = value.numerator, value.denominator
            if abs(num) >= _COORD_LIMIT or den >= _COORD_LIMIT:
                return False
            rows.append((num, den))
    return True


def encode_complex(arrays: ComplexArrays) -> bytes | None:
    """One complex-record body, or ``None`` when a rational witness
    overflows int64 (store the invariant record only, then).

    The combinatorial arrays are written verbatim; the exact witnesses
    (vertex points, edge polylines, face samples) flatten into one
    int64 ``(k, 2)`` rational block in reading order.
    """
    expect = sorted(
        [f"v{i}" for i in range(arrays.n_vertices)]
        + [f"e{i}" for i in range(arrays.n_edges)]
        + [f"f{i}" for i in range(arrays.n_faces)]
    )
    if list(arrays.cell_ids) != expect:
        return None  # non-standard numbering; nothing produces this today
    rows: list[tuple[int, int]] = []
    if not _push_rationals(rows, arrays.vertex_points):
        return None
    plens = []
    for line in arrays.edge_polylines:
        plens.append(len(line))
        if not _push_rationals(rows, line):
            return None
    if not _push_rationals(rows, arrays.face_samples):
        return None
    header = {
        "v": 1,
        "names": list(arrays.names),
        "nv": arrays.n_vertices,
        "ne": arrays.n_edges,
        "nf": arrays.n_faces,
        "ext": int(arrays.exterior_face),
        "ninc": int(len(arrays.incidence)),
        "nccw": int(len(arrays.ccw)),
        "plens": plens,
        "xy": arrays.vertex_xy is not None,
    }
    ints = b"".join(
        (
            arrays.edge_endpoints.astype("<i4", copy=False).tobytes(),
            arrays.incidence.astype("<i4", copy=False).tobytes(),
            arrays.ccw.astype("<i4", copy=False).tobytes(),
        )
    )
    blocks = [ints, arrays.labels.astype("u1", copy=False).tobytes()]
    if arrays.vertex_xy is not None:
        blocks.append(arrays.vertex_xy.astype("<f8", copy=False).tobytes())
    blocks.append(
        np.array(rows, dtype="<i8").reshape(len(rows), 2).tobytes()
    )
    return _frame(_CX_MAGIC, header, blocks)


def _points_from_rows(arr: np.ndarray, pos: int, count: int) -> tuple[list[Point], int]:
    chunk = arr[pos : pos + 2 * count].tolist()
    pts = [
        Point(
            Fraction(chunk[2 * i][0], chunk[2 * i][1]),
            Fraction(chunk[2 * i + 1][0], chunk[2 * i + 1][1]),
        )
        for i in range(count)
    ]
    return pts, pos + 2 * count


def decode_complex(buf) -> ComplexArrays:
    """Rebuild a :class:`ComplexArrays` from a complex-record body.

    The combinatorial arrays (labels, incidence, ccw, endpoints,
    vertex_xy) are zero-copy read-only views over *buf* — they stay
    valid only while the owning buffer (an mmap'd segment) is open.
    The rational witnesses are materialized Python objects.
    """
    header, view, off = _unframe(buf, _CX_MAGIC)
    if header.get("v") != 1:
        raise StoreError(f"unknown complex record version {header.get('v')!r}")
    try:
        nv, ne, nf = header["nv"], header["ne"], header["nf"]
        names = tuple(header["names"])
        plens = list(header["plens"])
    except KeyError as exc:
        raise StoreError(f"complex record header missing {exc}") from exc
    if len(plens) != ne:
        raise StoreError("polyline count does not match edge count")
    n = nv + ne + nf
    start = off
    endpoints, off = _take(view, off, "<i4", 2 * ne, (ne, 2))
    incidence, off = _take(view, off, "<i4", 2 * header["ninc"], (header["ninc"], 2))
    ccw, off = _take(view, off, "<i4", 3 * header["nccw"], (header["nccw"], 3))
    off += _pad8(off - start)
    labels, off = _take(view, off, "u1", n * len(names), (n, len(names)))
    off += _pad8(off - start)
    vertex_xy = None
    if header.get("xy"):
        vertex_xy, off = _take(view, off, "<f8", 2 * nv, (nv, 2))
        off += _pad8(off - start)
    n_rat = 2 * nv + 2 * sum(plens) + 2 * nf
    rationals, off = _take(view, off, "<i8", 2 * n_rat, (n_rat, 2))
    vertex_points, pos = _points_from_rows(rationals, 0, nv)
    edge_polylines = []
    for length in plens:
        line, pos = _points_from_rows(rationals, pos, length)
        edge_polylines.append(line)
    face_samples, pos = _points_from_rows(rationals, pos, nf)

    ids = sorted(
        [f"v{i}" for i in range(nv)]
        + [f"e{i}" for i in range(ne)]
        + [f"f{i}" for i in range(nf)]
    )
    index = {c: i for i, c in enumerate(ids)}
    dims = np.empty(n, dtype=np.int8)
    for c, i in index.items():
        dims[i] = {"v": 0, "e": 1, "f": 2}[c[0]]
    if not 0 <= header["ext"] < n or dims[header["ext"]] != 2:
        raise StoreError("complex exterior-face index out of range")
    vertex_gidx = np.array(
        [index[f"v{i}"] for i in range(nv)], dtype=np.int32
    )
    edge_gidx = np.array([index[f"e{i}"] for i in range(ne)], dtype=np.int32)
    face_gidx = np.array([index[f"f{i}"] for i in range(nf)], dtype=np.int32)
    return ComplexArrays(
        names=names,
        cell_ids=tuple(ids),
        dims=dims,
        labels=labels,
        incidence=incidence.astype(np.int32, copy=False),
        ccw=ccw.astype(np.int32, copy=False),
        edge_endpoints=endpoints.astype(np.int32, copy=False),
        exterior_face=int(header["ext"]),
        vertex_gidx=vertex_gidx,
        edge_gidx=edge_gidx,
        face_gidx=face_gidx,
        vertex_xy=vertex_xy,
        vertex_points=vertex_points,
        edge_polylines=edge_polylines,
        face_samples=face_samples,
    )
