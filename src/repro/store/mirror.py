"""N-way mirrored segment stores.

:class:`MirroredStore` keeps the same record set in *N* independent
:class:`~repro.store.store.SegmentStore` directories (ideally on
independent disks).  Writes are encoded once and appended verbatim to
every replica — the copies are bit-identical by construction, byte for
byte, checksum for checksum.  Reads resolve from the first healthy
replica and **fail over**: a replica that raises a structured
:class:`~repro.errors.StoreError` (at-rest corruption) or misses a
record another replica holds is answered around and then
**read-repaired** — the healthy replica's raw record bytes are appended
to the lagging one, shadowing the rot under newest-wins.

The consistency model is deliberately simple:

* A replica that fails an append is **marked down** on the spot.  Its
  earlier records are fine, but it may now miss newer writes — serving
  reads from it could return a stale (old-but-checksum-valid) record,
  which violates the bit-identical-or-error contract.  Down replicas
  are skipped by reads (a *degraded read*, counted) until
  :meth:`repair_replica` has copied over everything they missed.
* Therefore every **up** replica has seen every acknowledged write, so
  any one of them can answer alone, and disagreement between up
  replicas can only be corruption — which checksums catch.
* A put that fails on *every* replica raises; the record is not stored.

All traffic tallies into the ``store.replica_*`` counters next to the
underlying stores' own ``store.*`` family.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from ..errors import StoreError
from . import codec
from .segment import KIND_COMPLEX, KIND_INVARIANT, KIND_TOMBSTONE
from .store import (
    SegmentStore,
    _count,
    _cx_key,
    _raw_key,
    _safe_float_bbox,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..arrangement.soa import ComplexArrays
    from ..invariant import TopologicalInvariant
    from ..regions import SpatialInstance

__all__ = ["MirroredStore"]


class MirroredStore:
    """A write-through mirror over ``N`` segment-store directories.

    Presents the :class:`SegmentStore` API (puts, gets, window queries,
    compaction, context manager) plus replica management for the
    scrubber and the service health endpoint.
    """

    def __init__(
        self,
        roots: Sequence[str | Path],
        max_segment_bytes: int | None = None,
        sync: str | None = None,
        sync_appends: bool = False,
    ):
        paths = [Path(r) for r in roots]
        if not paths:
            raise StoreError("a mirrored store needs at least one root")
        if len({p.resolve() for p in paths}) != len(paths):
            raise StoreError("mirrored store roots must be distinct")
        kwargs: dict = {"sync": sync, "sync_appends": sync_appends}
        if max_segment_bytes is not None:
            kwargs["max_segment_bytes"] = max_segment_bytes
        self._replicas = [SegmentStore(p, **kwargs) for p in paths]
        self._down = [False] * len(paths)
        self._closed = False
        # Replica state shares the first replica's lock: operations
        # hold it across the whole fan-out so a concurrent reader never
        # sees a half-written mirror.
        self._lock = self._replicas[0]._lock

    # -- lifecycle ----------------------------------------------------------

    @property
    def replicas(self) -> list[SegmentStore]:
        return list(self._replicas)

    @property
    def sync(self) -> str:
        return self._replicas[0].sync

    def replica_status(self) -> list[dict]:
        """One dict per replica for ``health()``: root, up/down, and
        size."""
        with self._lock:
            return [
                {
                    "root": str(rep.root),
                    "up": not down,
                    "closed": rep.closed,
                    "nbytes": 0 if rep.closed else rep.nbytes,
                    "sealed_segments": 0
                    if rep.closed
                    else len(rep.sealed_segments()),
                }
                for rep, down in zip(self._replicas, self._down)
            ]

    def close(self, seal: bool = True) -> None:
        """Close every replica (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for rep in self._replicas:
                rep.close(seal=seal)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "MirroredStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def flush(self, sync: bool = False) -> None:
        with self._lock:
            for rep, down in zip(self._replicas, self._down):
                if not down:
                    rep.flush(sync=sync)

    def _up_indices(self) -> list[int]:
        return [i for i, down in enumerate(self._down) if not down]

    def _mark_down(self, index: int) -> None:
        if not self._down[index]:
            self._down[index] = True
            _count("replica_marked_down")

    # -- writes -------------------------------------------------------------

    def _fanout(
        self,
        raw: bytes,
        payload: bytes,
        kind: int,
        bbox: tuple | None = None,
    ) -> None:
        """Append one pre-encoded record to every up replica (caller
        holds the lock).  A replica that fails is marked down; only
        when *all* replicas fail does the put itself fail."""
        last_error: StoreError | None = None
        wrote = False
        for i in self._up_indices():
            try:
                self._replicas[i].put_raw(raw, payload, kind, bbox)
                wrote = True
            except StoreError as exc:
                _count("replica_write_failures")
                self._mark_down(i)
                last_error = exc
        if not wrote:
            raise StoreError(
                "append failed on every replica: "
                + str(last_error or "no replica is up"),
                op="append",
                errno=getattr(last_error, "errno", None),
            ) from last_error

    def put(
        self,
        key: str | bytes,
        invariant: "TopologicalInvariant",
        instance: "SpatialInstance | None" = None,
        bbox: tuple | None = None,
        canonical_hash: str | None = None,
    ) -> int:
        """Encode once, append the identical bytes to every replica."""
        raw = _raw_key(key)
        payload = codec.encode_record(
            invariant, instance=instance, canonical_hash=canonical_hash
        )
        if bbox is None and instance is not None:
            bbox = _safe_float_bbox(instance)
        with self._lock:
            self._fanout(raw, payload, KIND_INVARIANT, bbox)
        return len(payload)

    def put_complex(self, key: str | bytes, arrays: "ComplexArrays") -> bool:
        raw = _raw_key(key)
        payload = codec.encode_complex(arrays)
        if payload is None:
            _count("complex_fallbacks")
            return False
        with self._lock:
            self._fanout(_cx_key(raw), payload, KIND_COMPLEX)
        return True

    def delete(self, key: str | bytes) -> None:
        raw = _raw_key(key)
        with self._lock:
            self._fanout(raw, b"", KIND_TOMBSTONE)
            if any(
                self._replicas[i]._find(_cx_key(raw)) is not None
                for i in self._up_indices()
            ):
                self._fanout(_cx_key(raw), b"", KIND_TOMBSTONE)

    def bulk_load(
        self,
        corpus: "Iterable[SpatialInstance] | Sequence[SpatialInstance]",
        pipeline=None,
        batch_size: int = 256,
        store_geometry: bool = True,
    ) -> int:
        # Identical driver loop to SegmentStore.bulk_load; self.put
        # fans each record out to the replicas.
        return SegmentStore.bulk_load(
            self, corpus, pipeline, batch_size, store_geometry
        )

    # -- reads --------------------------------------------------------------

    def _resolve_raw(self, raw: bytes) -> tuple[int, bytes, tuple] | None:
        """The newest raw record across replicas (caller holds the
        lock): first healthy answer wins; replicas that errored or
        missed the record are read-repaired from it in place."""
        up = self._up_indices()
        if not up:
            raise StoreError(
                "no replica is up", op="read", errno=None
            )
        if len(up) < len(self._replicas):
            _count("degraded_reads")
        lagging: list[tuple[int, bool]] = []  # (index, was_error)
        answer: tuple[int, bytes, tuple] | None = None
        errors = 0
        for i in up:
            try:
                res = self._replicas[i].get_raw(raw)
            except StoreError:
                _count("replica_read_errors")
                _count("replica_failovers")
                lagging.append((i, True))
                errors += 1
                continue
            if res is None:
                # This replica never saw the key; another may have
                # (e.g. it was repaired after missing the write).
                lagging.append((i, False))
                continue
            answer = res
            break
        if answer is None:
            if errors and errors == len(up):
                raise StoreError(
                    "record is unreadable on every up replica",
                    op="read",
                )
            return None
        kind, payload, bbox = answer
        for i, was_error in lagging:
            # Corrupt or missing on an earlier replica: append the
            # healthy bytes verbatim, shadowing the rot.  A tombstone
            # is only worth copying over an *error* — a record that is
            # simply missing already reads as deleted.
            if kind == KIND_TOMBSTONE and not was_error:
                continue
            try:
                self._replicas[i].put_raw(raw, payload, kind, bbox)
                _count("replica_repairs")
            except StoreError:
                _count("replica_write_failures")
                self._mark_down(i)
        return answer

    def get_raw(self, key: str | bytes) -> tuple[int, bytes, tuple] | None:
        raw = _raw_key(key)
        with self._lock:
            return self._resolve_raw(raw)

    def get_record(self, key: str | bytes) -> codec.StoredRecord | None:
        raw = _raw_key(key)
        with self._lock:
            res = self._resolve_raw(raw)
        if res is None or res[0] == KIND_TOMBSTONE:
            _count("misses")
            return None
        _count("hits")
        return codec.decode_record(res[1])

    def get(self, key: str | bytes) -> "TopologicalInvariant | None":
        record = self.get_record(key)
        if record is None:
            return None
        return record.invariant()

    def get_instance(self, key: str | bytes) -> "SpatialInstance | None":
        record = self.get_record(key)
        if record is None or not record.has_instance:
            return None
        return record.instance()

    def get_complex(self, key: str | bytes) -> "ComplexArrays | None":
        raw = _cx_key(_raw_key(key))
        with self._lock:
            res = self._resolve_raw(raw)
        if res is None or res[0] == KIND_TOMBSTONE:
            return None
        _count("complex_hits")
        return codec.decode_complex(res[1])

    def __contains__(self, key: str | bytes) -> bool:
        res = self.get_raw(key)
        return res is not None and res[0] != KIND_TOMBSTONE

    def _first_up(self) -> SegmentStore:
        with self._lock:
            up = self._up_indices()
            if not up:
                raise StoreError("no replica is up", op="read")
            if len(up) < len(self._replicas):
                _count("degraded_reads")
            return self._replicas[up[0]]

    def keys(self) -> Iterator[str]:
        return self._first_up().keys()

    def __len__(self) -> int:
        return len(self._first_up())

    def keys_for_class(self, class_hash: str) -> list[str]:
        return self._first_up().keys_for_class(class_hash)

    def window_query(
        self, xmin: float, ymin: float, xmax: float, ymax: float
    ) -> list[str]:
        return self._first_up().window_query(xmin, ymin, xmax, ymax)

    def window_query_scan(
        self, xmin: float, ymin: float, xmax: float, ymax: float
    ) -> list[str]:
        return self._first_up().window_query_scan(xmin, ymin, xmax, ymax)

    @property
    def nbytes(self) -> int:
        with self._lock:
            return sum(
                rep.nbytes for rep in self._replicas if not rep.closed
            )

    # -- maintenance --------------------------------------------------------

    def compact(self) -> dict:
        """Compact every up replica; returns the first replica's
        stats."""
        with self._lock:
            stats = [
                self._replicas[i].compact() for i in self._up_indices()
            ]
        return stats[0] if stats else {}

    def repair_replica(self, index: int) -> int:
        """Copy every record the replica at *index* is missing (or
        cannot read) from its healthy peers, then mark it up.  Returns
        the number of records copied.  The inverse of the down-marking
        a failed append performs — run it once the underlying disk has
        space/health again."""
        with self._lock:
            target = self._replicas[index]
            sources = [
                self._replicas[i]
                for i in self._up_indices()
                if i != index
            ]
            if not sources:
                raise StoreError(
                    "no healthy peer to repair from", op="repair"
                )
            copied = 0
            seen: set[bytes] = set()
            for source in sources:
                for raw, kind in source.raw_keys():
                    if raw in seen:
                        continue
                    seen.add(raw)
                    try:
                        have = target.get_raw(raw)
                    except StoreError:
                        have = None  # unreadable: overwrite with good bytes
                    if kind == KIND_TOMBSTONE:
                        if have is None or have[0] == KIND_TOMBSTONE:
                            continue  # already reads as deleted
                        # The replica went down before the delete and
                        # still serves the old record: copy the
                        # tombstone so it stops.
                        target.put_raw(raw, b"", KIND_TOMBSTONE)
                        copied += 1
                        continue
                    if have is not None:
                        continue
                    res = source.get_raw(raw)
                    if res is None or res[0] == KIND_TOMBSTONE:
                        continue
                    target.put_raw(raw, res[1], res[0], res[2])
                    copied += 1
            self._down[index] = False
        if copied:
            _count("replica_repairs", copied)
        return copied

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        up = sum(1 for d in self._down if not d)
        return (
            f"MirroredStore({len(self._replicas)} replicas, {up} up)"
        )
