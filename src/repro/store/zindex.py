"""Z-order (Morton) spatial keys for the segment store.

The store's secondary index answers "which stored instances have a
bounding box intersecting this window?" without scanning the segment.
Each indexed record contributes one point — the quantized *min corner*
of its bbox — mapped to a 32-bit Morton code (16 bits per axis, bits
interleaved), and the per-segment index keeps the codes sorted.  A
window query then

1. grows the window left/down by the segment's largest bbox extent
   (a box whose min corner lies outside the grown window cannot reach
   the window), quantizes it to a cell rectangle,
2. decomposes that cell rectangle into a bounded number of contiguous
   Morton ranges (:func:`morton_ranges` — a quadtree descent that emits
   a whole quad's range as soon as the quad is inside the rectangle,
   and stops splitting when the range budget is hit, over-covering
   rather than over-splitting), and
3. binary-searches each range in the sorted code array; the survivors
   are filtered against their exact stored bboxes.

Every step over-approximates, never under: quantization is floor/ceil
outward, partial quads are emitted whole when the budget runs out, and
the final bbox filter restores exactness (at float64 resolution — the
index stores rounded rational bounds, see :mod:`repro.store.segment`).

Quantization is per segment: the footer records the segment's world
bounds and scale, so segments over different corpora keep full 16-bit
resolution each.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "GRID_BITS",
    "GRID_CELLS",
    "interleave2",
    "morton_codes",
    "quantize",
    "morton_ranges",
]

#: Bits per axis; codes are ``2 * GRID_BITS`` wide.
GRID_BITS = 16
GRID_CELLS = 1 << GRID_BITS


def interleave2(x: np.ndarray) -> np.ndarray:
    """Spread the low 16 bits of *x* into the even bit positions.

    Vectorized magic-number bit spreading; input values must be below
    ``GRID_CELLS``.
    """
    v = x.astype(np.uint64)
    v = (v | (v << 8)) & np.uint64(0x00FF00FF)
    v = (v | (v << 4)) & np.uint64(0x0F0F0F0F)
    v = (v | (v << 2)) & np.uint64(0x33333333)
    v = (v | (v << 1)) & np.uint64(0x55555555)
    return v


def morton_codes(qx: np.ndarray, qy: np.ndarray) -> np.ndarray:
    """Morton codes (uint64) of quantized cell coordinates."""
    return interleave2(qx) | (interleave2(qy) << np.uint64(1))


def quantize(
    values: np.ndarray, origin: float, scale: float
) -> np.ndarray:
    """Map world coordinates onto the ``[0, GRID_CELLS)`` cell grid.

    *scale* is cells per world unit.  Out-of-range values clamp to the
    boundary cells, which keeps the mapping total (a record appended
    after the bounds were fixed still lands in the nearest edge cell —
    conservative for range queries that clamp the same way).
    """
    cells = np.floor((np.asarray(values, dtype=np.float64) - origin) * scale)
    return np.clip(cells, 0, GRID_CELLS - 1).astype(np.uint64)


def _quad_ranges(
    out: list[tuple[int, int]],
    code: int,
    level: int,
    qx0: int,
    qx1: int,
    qy0: int,
    qy1: int,
    x0: int,
    y0: int,
    budget: int,
) -> None:
    """Descend one quad (origin ``(x0, y0)``, side ``2**level``).

    Appends ``(lo, hi)`` half-open Morton ranges to *out*.  When *out*
    already holds *budget* ranges, partial quads are emitted whole —
    over-coverage the exact bbox filter removes later.
    """
    side = 1 << level
    if qx1 < x0 or qx0 > x0 + side - 1 or qy1 < y0 or qy0 > y0 + side - 1:
        return
    span = 1 << (2 * level)
    if (
        qx0 <= x0
        and x0 + side - 1 <= qx1
        and qy0 <= y0
        and y0 + side - 1 <= qy1
    ) or level == 0 or len(out) >= budget:
        if out and out[-1][1] == code:
            out[-1] = (out[-1][0], code + span)  # merge adjacent
        else:
            out.append((code, code + span))
        return
    half = side >> 1
    step = span >> 2
    # Children in Morton order: (0,0), (1,0), (0,1), (1,1).
    _quad_ranges(out, code, level - 1, qx0, qx1, qy0, qy1, x0, y0, budget)
    _quad_ranges(
        out, code + step, level - 1, qx0, qx1, qy0, qy1, x0 + half, y0, budget
    )
    _quad_ranges(
        out,
        code + 2 * step,
        level - 1,
        qx0,
        qx1,
        qy0,
        qy1,
        x0,
        y0 + half,
        budget,
    )
    _quad_ranges(
        out,
        code + 3 * step,
        level - 1,
        qx0,
        qx1,
        qy0,
        qy1,
        x0 + half,
        y0 + half,
        budget,
    )


def morton_ranges(
    qx0: int, qx1: int, qy0: int, qy1: int, max_ranges: int = 64
) -> list[tuple[int, int]]:
    """Half-open Morton-code ranges covering the cell rectangle
    ``[qx0, qx1] x [qy0, qy1]`` (inclusive cell bounds).

    The union of the ranges is a superset of the rectangle's codes
    (exact when the budget suffices), sorted and non-overlapping, with
    at most ``max_ranges + 3`` entries (the descent checks the budget
    before splitting, and a split adds at most four).
    """
    if qx1 < qx0 or qy1 < qy0:
        return []
    out: list[tuple[int, int]] = []
    _quad_ranges(
        out,
        0,
        GRID_BITS,
        int(qx0),
        int(qx1),
        int(qy0),
        int(qy1),
        0,
        0,
        max(1, max_ranges),
    )
    return out
