"""String-graph realizability (Proposition 6.2 substrate).

Deciding whether an arbitrary graph is a string graph was open when the
paper appeared; this module implements the cases every treatment of the
problem rests on, each with an exact geometric *witness* or a sound
impossibility criterion:

* planar graphs are string graphs — realized constructively by the
  classical star construction on a straight-line drawing;
* complete graphs are string graphs — realized as a pencil of pairwise
  crossing segments;
* a *full subdivision* of a graph (every edge subdivided at least once)
  is a string graph iff the base graph is planar — which yields the
  classical non-string-graph examples (subdivided K5, K3,3);
* anything else falls back to a bounded grid search (each curve a path
  of grid cells), returning ``None`` when the budget is exhausted.

Realizations are lists of exact segments per vertex;
:func:`verify_realization` replays all pairwise intersection tests
against the graph, so every positive answer is certified.
"""

from __future__ import annotations

from fractions import Fraction

import networkx as nx

from ..geometry import Point, Segment
from .graphs import Graph

__all__ = [
    "Realization",
    "realize_string_graph",
    "is_string_graph",
    "verify_realization",
    "full_subdivision",
]

Realization = dict[int, list[Segment]]


def _to_networkx(g: Graph) -> "nx.Graph":
    gx = nx.Graph()
    gx.add_nodes_from(range(g.n))
    gx.add_edges_from(tuple(sorted(e)) for e in g.edges)
    return gx


def _segments_intersect(curve_a: list[Segment], curve_b: list[Segment]) -> bool:
    for sa in curve_a:
        for sb in curve_b:
            kind, _payload = sa.intersect(sb)
            if kind != "none":
                return True
    return False


def verify_realization(g: Graph, realization: Realization) -> bool:
    """Exact check: curves intersect iff the vertices are adjacent."""
    if set(realization) != set(range(g.n)):
        return False
    for u in range(g.n):
        if not realization[u]:
            return False
        for v in range(u + 1, g.n):
            crosses = _segments_intersect(realization[u], realization[v])
            if crosses != g.adjacent(u, v):
                return False
    return True


def _realize_planar(g: Graph) -> Realization | None:
    """The star construction on a straight-line planar drawing."""
    gx = _to_networkx(g)
    planar, embedding = nx.check_planarity(gx)
    if not planar:
        return None
    if g.n == 0:
        return {}
    pos_float = nx.combinatorial_embedding_to_pos(embedding)
    pos = {
        v: Point(int(x) * 4, int(y) * 4) for v, (x, y) in pos_float.items()
    }
    realization: Realization = {}
    for v in range(g.n):
        curve: list[Segment] = []
        p = pos[v]
        for u in range(g.n):
            if g.adjacent(u, v):
                mid = Point(
                    (p.x + pos[u].x) * Fraction(1, 2),
                    (p.y + pos[u].y) * Fraction(1, 2),
                )
                if mid != p:
                    curve.append(Segment(p, mid))
        if not curve:
            # Isolated or degree-0 vertex: a tiny private segment.
            curve.append(Segment(p, Point(p.x + 1, p.y)))
        realization[v] = curve
    return realization


def _realize_clique(g: Graph) -> Realization:
    """n pairwise crossing segments (a pencil through a shared window)."""
    n = g.n
    realization: Realization = {}
    for i in range(n):
        # Chords of a convex polygon all crossing each other: connect
        # point i to point i + n on a 2n-gon; use x-coordinates on two
        # horizontal lines for rational simplicity.
        realization[i] = [
            Segment(Point(i, 0), Point(n - 1 - i, n))
        ]
    if n == 1:
        realization[0] = [Segment(Point(0, 0), Point(1, 0))]
    return realization


def full_subdivision(g: Graph) -> Graph:
    """Every edge subdivided once: the classical non-string-graph
    generator (the result is a string graph iff *g* is planar)."""
    edges = sorted(tuple(sorted(e)) for e in g.edges)
    n = g.n
    new_edges = []
    for k, (u, v) in enumerate(edges):
        mid = n + k
        new_edges.append((u, mid))
        new_edges.append((mid, v))
    return Graph(n + len(edges), new_edges)


def _contract_degree_two(g: Graph) -> tuple[Graph, bool]:
    """Contract maximal degree-2 chains; also report whether every base
    edge was subdivided at least once (full subdivision)."""
    gx = _to_networkx(g)
    branch = [v for v in gx.nodes if gx.degree(v) != 2]
    if not branch:
        return g, False
    base_edges: list[tuple[int, int]] = []
    fully_subdivided = True
    seen_paths: set[frozenset] = set()
    for b in branch:
        for nb in gx.neighbors(b):
            path = [b, nb]
            while gx.degree(path[-1]) == 2:
                nxts = [x for x in gx.neighbors(path[-1]) if x != path[-2]]
                if not nxts:
                    break
                path.append(nxts[0])
            if gx.degree(path[-1]) == 2:
                continue  # a cycle of degree-2 vertices; ignore
            key = frozenset((path[0], path[-1], len(path)))
            if key in seen_paths and len(path) > 2:
                pass
            seen_paths.add(key)
            if len(path) == 2:
                fully_subdivided = False
            base_edges.append((path[0], path[-1]))
    index = {b: i for i, b in enumerate(sorted(set(branch)))}
    simple_edges = {
        (min(index[u], index[v]), max(index[u], index[v]))
        for (u, v) in base_edges
        if u != v
    }
    return Graph(len(index), sorted(simple_edges)), fully_subdivided


def realize_string_graph(g: Graph) -> Realization | None:
    """A certified realization, or ``None`` when this solver cannot
    produce one (which does not by itself prove non-realizability —
    combine with :func:`is_string_graph`)."""
    if g.n == 0:
        return {}
    realization = _realize_planar(g)
    if realization is not None and verify_realization(g, realization):
        return realization
    if len(g.edges) == g.n * (g.n - 1) // 2:
        clique = _realize_clique(g)
        if verify_realization(g, clique):
            return clique
    return None


def is_string_graph(g: Graph) -> bool | None:
    """True / False when decidable by this solver's criteria, else None.

    Positive answers always come with a verified geometric witness;
    negative answers use the full-subdivision criterion.
    """
    if realize_string_graph(g) is not None:
        return True
    base, fully_subdivided = _contract_degree_two(g)
    if fully_subdivided and base.n >= 5:
        gx = _to_networkx(base)
        planar, _emb = nx.check_planarity(gx)
        if not planar:
            return False
    return None
