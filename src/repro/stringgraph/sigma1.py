"""The fragment Σ1(Rect*, ∅) and its string-graph equivalence
(Proposition 6.2 / Corollary 6.3).

A Σ1(Rect*, ∅) sentence is an existential sentence over region
variables (no input regions) whose matrix is a boolean combination of
``connect`` literals.  The paper shows:

* when the matrix is a conjunction with one literal per pair, the
  sentence is satisfiable iff the graph of positive literals is a
  *string graph* (curves ↔ thin rectangle unions);
* a general sentence reduces to exponentially many such calls, one per
  satisfying assignment of its matrix.

Both directions are implemented, with satisfiability decided by
:func:`repro.stringgraph.realizability.is_string_graph` (sound
certificates in both directions, ``None`` when outside the solver's
criteria — the problem's wild complexity is the content of
Corollary 6.3).
"""

from __future__ import annotations

import itertools

from ..errors import QueryError
from ..logic.ast import (
    And,
    ExistsRegion,
    Formula,
    Not,
    RegionVar,
    Rel,
)
from .graphs import Graph
from .realizability import is_string_graph

__all__ = [
    "graph_to_sigma1",
    "sigma1_to_graph",
    "sigma1_satisfiable",
    "conjunctive_sigma1_satisfiable",
]


def graph_to_sigma1(g: Graph) -> Formula:
    """The Σ1 sentence asserting realizability of *g*: one quantified
    region per vertex, a connect literal per edge, a negated one per
    non-edge."""
    literals: list[Formula] = []
    for u in range(g.n):
        for v in range(u + 1, g.n):
            atom = Rel("connect", RegionVar(f"r{u}"), RegionVar(f"r{v}"))
            literals.append(atom if g.adjacent(u, v) else Not(atom))
    if not literals:
        literals = [
            Rel("connect", RegionVar("r0"), RegionVar("r0"))
        ]
    body: Formula = And(*literals)
    for u in reversed(range(g.n)):
        body = ExistsRegion(f"r{u}", body)
    return body


def sigma1_to_graph(sentence: Formula) -> Graph:
    """Decode a conjunctive Σ1 sentence back into its graph.

    The sentence must have the canonical shape produced by
    :func:`graph_to_sigma1` (existential prefix + conjunction of
    connect literals, one per pair).
    """
    variables: list[str] = []
    body = sentence
    while isinstance(body, ExistsRegion):
        variables.append(body.variable)
        body = body.body
    if not isinstance(body, And):
        raise QueryError("matrix must be a conjunction")
    index = {name: i for i, name in enumerate(variables)}
    edges = []
    specified = set()
    for literal in body.parts:
        negated = isinstance(literal, Not)
        atom = literal.inner if negated else literal
        if not (
            isinstance(atom, Rel)
            and atom.relation == "connect"
            and isinstance(atom.left, RegionVar)
            and isinstance(atom.right, RegionVar)
        ):
            raise QueryError("matrix literals must be connect atoms")
        u, v = index[atom.left.name], index[atom.right.name]
        if u == v:
            continue
        pair = frozenset((u, v))
        if pair in specified:
            raise QueryError("duplicate literal for a pair")
        specified.add(pair)
        if not negated:
            edges.append((u, v))
    n = len(variables)
    if len(specified) != n * (n - 1) // 2:
        raise QueryError("matrix must specify every pair")
    return Graph(n, edges)


def conjunctive_sigma1_satisfiable(sentence: Formula) -> bool | None:
    """Satisfiability of a fully specified conjunctive Σ1 sentence —
    Proposition 6.2: exactly the string-graph problem."""
    return is_string_graph(sigma1_to_graph(sentence))


def sigma1_satisfiable(
    n: int,
    positive: set[tuple[int, int]],
    negative: set[tuple[int, int]],
) -> bool | None:
    """Satisfiability of a partially specified Σ1 sentence.

    Unspecified pairs are completed in all ways (the paper's
    "exponentially many calls"); returns True as soon as one completion
    is a string graph, False if all completions are non-string-graphs,
    None if any completion is undecided while none is True.
    """
    pos = {frozenset(p) for p in positive}
    neg = {frozenset(p) for p in negative}
    if pos & neg:
        return False
    all_pairs = {
        frozenset((u, v))
        for u in range(n)
        for v in range(u + 1, n)
    }
    free = sorted(all_pairs - pos - neg, key=sorted)
    saw_unknown = False
    for bits in itertools.product((False, True), repeat=len(free)):
        chosen = pos | {
            pair for pair, bit in zip(free, bits) if bit
        }
        g = Graph(n, [tuple(sorted(p)) for p in chosen])
        result = is_string_graph(g)
        if result:
            return True
        if result is None:
            saw_unknown = True
    return None if saw_unknown else False
