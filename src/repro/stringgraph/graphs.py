"""String graphs: intersection graphs of curves in the plane.

Proposition 6.2 of the paper reduces the decidability of the existential
fragment Σ1(Rect*, ∅) to the *string graph* problem: is a given graph
the intersection graph of a set of curves?  (Open at the time of the
paper; since resolved in the affirmative, with wild complexity.)  We
carry graphs as simple adjacency structures and realize them with
rectilinear curves on a grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from ..errors import ReproError

__all__ = ["Graph"]


@dataclass(frozen=True)
class Graph:
    """A finite simple graph with integer vertices 0..n-1."""

    n: int
    edges: frozenset[frozenset[int]]

    def __init__(self, n: int, edges):
        edge_set = frozenset(frozenset(e) for e in edges)
        for e in edge_set:
            if len(e) != 2 or not all(0 <= v < n for v in e):
                raise ReproError(f"bad edge {sorted(e)} for n={n}")
        object.__setattr__(self, "n", n)
        object.__setattr__(self, "edges", edge_set)

    def adjacent(self, u: int, v: int) -> bool:
        return frozenset((u, v)) in self.edges

    def degree(self, v: int) -> int:
        return sum(1 for e in self.edges if v in e)

    def complement(self) -> "Graph":
        return Graph(
            self.n,
            [
                (u, v)
                for u, v in combinations(range(self.n), 2)
                if not self.adjacent(u, v)
            ],
        )

    # -- standard families --------------------------------------------------------

    @staticmethod
    def path(n: int) -> "Graph":
        return Graph(n, [(i, i + 1) for i in range(n - 1)])

    @staticmethod
    def cycle(n: int) -> "Graph":
        return Graph(n, [(i, (i + 1) % n) for i in range(n)])

    @staticmethod
    def complete(n: int) -> "Graph":
        return Graph(n, list(combinations(range(n), 2)))

    @staticmethod
    def star(leaves: int) -> "Graph":
        return Graph(leaves + 1, [(0, i + 1) for i in range(leaves)])

    @staticmethod
    def matching(pairs: int) -> "Graph":
        return Graph(2 * pairs, [(2 * i, 2 * i + 1) for i in range(pairs)])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(n={self.n}, m={len(self.edges)})"
