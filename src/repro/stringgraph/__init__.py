"""String graphs and the Σ1(Rect*, ∅) fragment (Prop. 6.2 / Cor. 6.3)."""

from .graphs import Graph
from .realizability import (
    Realization,
    full_subdivision,
    is_string_graph,
    realize_string_graph,
    verify_realization,
)
from .sigma1 import (
    conjunctive_sigma1_satisfiable,
    graph_to_sigma1,
    sigma1_satisfiable,
    sigma1_to_graph,
)

__all__ = [
    "Graph",
    "Realization",
    "conjunctive_sigma1_satisfiable",
    "full_subdivision",
    "graph_to_sigma1",
    "is_string_graph",
    "realize_string_graph",
    "sigma1_satisfiable",
    "sigma1_to_graph",
    "verify_realization",
]
