"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing geometric, model, and query-language failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GeometryError(ReproError):
    """A geometric precondition was violated (degenerate input, etc.)."""


class RegionError(ReproError):
    """A region constructor received data that does not describe a valid
    region of its class (e.g. a self-intersecting polygon for ``Poly``)."""


class InstanceError(ReproError):
    """A spatial database instance is malformed (duplicate names, etc.)."""


class ArrangementError(ReproError):
    """The arrangement engine reached an inconsistent state."""


class InvariantError(ReproError):
    """A structure claimed to be a topological invariant is not one, or an
    invariant operation received incompatible arguments."""


class ValidationError(InvariantError):
    """An instance over the thematic schema failed one of the labeled
    planar graph conditions (1)-(7) of Section 3 of the paper.

    Attributes
    ----------
    condition:
        The number (1-7) of the first condition that failed, when known.
    """

    def __init__(self, message: str, condition: int | None = None):
        super().__init__(message)
        self.condition = condition


class SchemaError(ReproError):
    """A relational operation was applied to relations with incompatible
    schemas."""


class QueryError(ReproError):
    """A query-language expression is ill-formed or cannot be evaluated
    under the chosen semantics."""


class ParseError(QueryError):
    """The query parser rejected its input.

    Attributes
    ----------
    position:
        Character offset of the error in the source text, when known.
    """

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class EncodingError(ReproError):
    """An arithmetic-encoding construction received invalid parameters."""


class PipelineError(ReproError):
    """The batch pipeline was misconfigured or reached an inconsistent
    state (e.g. a canonical-hash bucket whose members fail the
    isomorphism verification)."""


class ComputeError(PipelineError):
    """Computing one instance's invariant failed (after any configured
    retries).  Unlike :class:`PipelineError` it is scoped to a single
    task: the batch machinery catches it per instance, so one bad
    instance never poisons its siblings.

    Attributes
    ----------
    key:
        The content-addressed instance key of the failed task, when
        known (``instance_key`` digest).
    stage:
        Where the failure happened (``"compute"``, a backend name,
        ``"universe_enumeration"``, ...), when known.
    attempts:
        How many times the task was attempted before giving up.
    """

    def __init__(
        self,
        message: str,
        key: str | None = None,
        stage: str | None = None,
        attempts: int = 0,
    ):
        super().__init__(message)
        self.key = key
        self.stage = stage
        self.attempts = attempts


class WorkerError(ComputeError):
    """A pool worker died (or was killed) while holding a task.  The
    task itself may be innocent: worker death is attributed to every
    task in flight when the pool broke."""


class TimeoutError(ComputeError, TimeoutError):
    """A task (or a cooperative deadline check inside one) exceeded its
    configured time budget.  Also subclasses the builtin
    :class:`TimeoutError` so generic timeout handlers catch it."""


class StoreError(ReproError):
    """The segment store hit malformed data or an invalid operation
    (torn record, checksum mismatch, append to a sealed segment, a
    failed fsync, a full disk, ...).

    Structured so callers can react without parsing messages:

    Attributes
    ----------
    op:
        The store operation that failed (``"append"``, ``"read"``,
        ``"seal"``, ``"fsync"``, ``"open"``, ...), when known.
    path:
        The segment file involved, when known.
    errno:
        The OS error number (``ENOSPC``, ``EIO``, ...) when the failure
        wrapped an :class:`OSError`, else None.
    """

    def __init__(
        self,
        message: str,
        op: str | None = None,
        path: str | None = None,
        errno: int | None = None,
    ):
        super().__init__(message)
        self.op = op
        self.path = path
        self.errno = errno


class ServiceError(ReproError):
    """A request to the query service failed at the service layer (as
    opposed to inside the evaluation it wraps).  Carries an HTTP-style
    ``status`` so a transport adapter can map it without inspecting
    types.

    Attributes
    ----------
    status:
        An HTTP-style status code (404, 503, ...).
    endpoint:
        The service endpoint that rejected the request, when known.
    """

    status = 500

    def __init__(self, message: str, endpoint: str | None = None):
        super().__init__(message)
        self.endpoint = endpoint


class UnknownInstanceError(ServiceError):
    """A request named a stored instance the service does not hold."""

    status = 404

    def __init__(
        self,
        message: str,
        endpoint: str | None = None,
        name: str | None = None,
    ):
        super().__init__(message, endpoint=endpoint)
        self.name = name


class OverloadError(ServiceError):
    """The service shed the request: the compute stage and its queue
    were both full when the request arrived.  The request was never
    started — retrying after backoff is safe.

    Attributes
    ----------
    queue_depth:
        How many requests were already waiting when this one was shed.
    """

    status = 503

    def __init__(
        self,
        message: str,
        endpoint: str | None = None,
        queue_depth: int = 0,
    ):
        super().__init__(message, endpoint=endpoint)
        self.queue_depth = queue_depth


class ServiceClosedError(ServiceError):
    """The service was shut down before (or while) handling the
    request."""

    status = 503


class StoreUnavailableError(ServiceError):
    """The service's circuit breaker is open: recent store reads
    failed consecutively, so further reads are short-circuited until a
    half-open probe succeeds.  Retrying after backoff is safe — the
    request never touched the store.

    Attributes
    ----------
    breaker_state:
        The breaker state that rejected the request (``"open"``).
    """

    status = 503

    def __init__(
        self,
        message: str,
        endpoint: str | None = None,
        breaker_state: str = "open",
    ):
        super().__init__(message, endpoint=endpoint)
        self.breaker_state = breaker_state


class ShardDownError(ServiceError):
    """The shard owning this request's instance is permanently down:
    its worker process died and the respawn budget is exhausted.  The
    request was refused without queueing (a fast 503) — other shards
    keep serving, and retrying against a rebuilt service is safe.

    Attributes
    ----------
    shard:
        The shard id that is down.
    """

    status = 503

    def __init__(
        self,
        message: str,
        endpoint: str | None = None,
        shard: int | None = None,
    ):
        super().__init__(message, endpoint=endpoint)
        self.shard = shard
