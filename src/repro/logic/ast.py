"""Abstract syntax of the region-based languages FO(Region, Region')
(Section 4 of the paper).

Terms
-----
* name expressions — a name variable or a name constant from *Names*;
* region expressions — a region variable or ``ext(a)`` for a name
  expression *a* (written just ``a`` in queries, as the paper does).

Atoms
-----
* ``a = b`` between name expressions;
* ``relationship(p, q)`` where *relationship* is one of the eight
  4-intersection relations, or the primitive ``connect`` (the paper
  notes all of them are definable from ``connect`` alone — see
  :mod:`repro.logic.derived`).

Formulas close the atoms under boolean connectives and quantifiers over
regions and over names.  The same AST is interpreted by several
evaluators (cell semantics, rectangle order abstraction), which is how
one syntax yields the whole family of languages.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import QueryError

__all__ = [
    "NameTerm",
    "NameVar",
    "NameConst",
    "RegionTerm",
    "RegionVar",
    "Ext",
    "Formula",
    "NameEq",
    "Rel",
    "Not",
    "And",
    "Or",
    "Implies",
    "ExistsRegion",
    "ForAllRegion",
    "ExistsName",
    "ForAllName",
    "RELATION_NAMES",
    "flatten_and",
]

#: The eight 4-intersection relations, the ``connect`` primitive, and
#: ``subset`` (definable from ``connect`` — Section 4 — but provided as a
#: primitive for efficient evaluation).
RELATION_NAMES = (
    "disjoint",
    "meet",
    "overlap",
    "equal",
    "inside",
    "contains",
    "coveredBy",
    "covers",
    "connect",
    "subset",
)


class NameTerm:
    """A term of the name sort."""


@dataclass(frozen=True)
class NameVar(NameTerm):
    name: str

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"?{self.name}"


@dataclass(frozen=True)
class NameConst(NameTerm):
    value: str

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class RegionTerm:
    """A term of the region sort."""


@dataclass(frozen=True)
class RegionVar(RegionTerm):
    name: str

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True)
class Ext(RegionTerm):
    """``ext(a)``: the extent of a named region of the instance."""

    name: NameTerm

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ext({self.name!r})"


class Formula:
    """Base class of formulas; carries free-variable bookkeeping."""

    def free_region_vars(self) -> frozenset[str]:
        raise NotImplementedError

    def free_name_vars(self) -> frozenset[str]:
        raise NotImplementedError

    def quantifier_depth(self) -> int:
        raise NotImplementedError

    def is_sentence(self) -> bool:
        return not self.free_region_vars() and not self.free_name_vars()

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)


def _region_term_vars(t: RegionTerm) -> frozenset[str]:
    return frozenset((t.name,)) if isinstance(t, RegionVar) else frozenset()


def _region_term_name_vars(t: RegionTerm) -> frozenset[str]:
    if isinstance(t, Ext) and isinstance(t.name, NameVar):
        return frozenset((t.name.name,))
    return frozenset()


def _name_term_vars(t: NameTerm) -> frozenset[str]:
    return frozenset((t.name,)) if isinstance(t, NameVar) else frozenset()


@dataclass(frozen=True)
class NameEq(Formula):
    left: NameTerm
    right: NameTerm

    def free_region_vars(self) -> frozenset[str]:
        return frozenset()

    def free_name_vars(self) -> frozenset[str]:
        return _name_term_vars(self.left) | _name_term_vars(self.right)

    def quantifier_depth(self) -> int:
        return 0


@dataclass(frozen=True)
class Rel(Formula):
    """``relationship(p, q)`` between two region terms."""

    relation: str
    left: RegionTerm
    right: RegionTerm

    def __post_init__(self):
        if self.relation not in RELATION_NAMES:
            raise QueryError(f"unknown relationship {self.relation!r}")

    def free_region_vars(self) -> frozenset[str]:
        return _region_term_vars(self.left) | _region_term_vars(self.right)

    def free_name_vars(self) -> frozenset[str]:
        return _region_term_name_vars(self.left) | _region_term_name_vars(
            self.right
        )

    def quantifier_depth(self) -> int:
        return 0


@dataclass(frozen=True)
class Not(Formula):
    inner: Formula

    def free_region_vars(self):
        return self.inner.free_region_vars()

    def free_name_vars(self):
        return self.inner.free_name_vars()

    def quantifier_depth(self) -> int:
        return self.inner.quantifier_depth()


class _Nary(Formula):
    def __init__(self, *parts: Formula):
        if not parts:
            raise QueryError("empty connective")
        self.parts = tuple(parts)

    def free_region_vars(self):
        out: frozenset[str] = frozenset()
        for p in self.parts:
            out |= p.free_region_vars()
        return out

    def free_name_vars(self):
        out: frozenset[str] = frozenset()
        for p in self.parts:
            out |= p.free_name_vars()
        return out

    def quantifier_depth(self) -> int:
        return max(p.quantifier_depth() for p in self.parts)

    def __eq__(self, other):
        return type(self) is type(other) and self.parts == other.parts

    def __hash__(self):
        return hash((type(self).__name__, self.parts))


class And(_Nary):
    pass


class Or(_Nary):
    pass


@dataclass(frozen=True)
class Implies(Formula):
    antecedent: Formula
    consequent: Formula

    def free_region_vars(self):
        return (
            self.antecedent.free_region_vars()
            | self.consequent.free_region_vars()
        )

    def free_name_vars(self):
        return (
            self.antecedent.free_name_vars()
            | self.consequent.free_name_vars()
        )

    def quantifier_depth(self) -> int:
        return max(
            self.antecedent.quantifier_depth(),
            self.consequent.quantifier_depth(),
        )


class _RegionQuantifier(Formula):
    def __init__(self, variable: str, body: Formula):
        self.variable = variable
        self.body = body

    def free_region_vars(self):
        return self.body.free_region_vars() - {self.variable}

    def free_name_vars(self):
        return self.body.free_name_vars()

    def quantifier_depth(self) -> int:
        return 1 + self.body.quantifier_depth()

    def __eq__(self, other):
        return (
            type(self) is type(other)
            and self.variable == other.variable
            and self.body == other.body
        )

    def __hash__(self):
        return hash((type(self).__name__, self.variable, self.body))


class ExistsRegion(_RegionQuantifier):
    pass


class ForAllRegion(_RegionQuantifier):
    pass


class _NameQuantifier(Formula):
    def __init__(self, variable: str, body: Formula):
        self.variable = variable
        self.body = body

    def free_region_vars(self):
        return self.body.free_region_vars()

    def free_name_vars(self):
        return self.body.free_name_vars() - {self.variable}

    def quantifier_depth(self) -> int:
        # Name quantifiers range over a finite set; they do not add to
        # the region quantifier depth that drives evaluation cost.
        return self.body.quantifier_depth()

    def __eq__(self, other):
        return (
            type(self) is type(other)
            and self.variable == other.variable
            and self.body == other.body
        )

    def __hash__(self):
        return hash((type(self).__name__, self.variable, self.body))


class ExistsName(_NameQuantifier):
    pass


class ForAllName(_NameQuantifier):
    pass


def flatten_and(f: Formula) -> list[Formula] | None:
    """The conjunct list of a (possibly nested) conjunction, in left-to-
    right order, or None when *f* is not an ``And``.

    The compiled evaluator partitions these conjuncts into cheap
    quantifier-free candidate filters and the quantified remainder; the
    reference evaluators never need the flattened view.
    """
    if not isinstance(f, And):
        return None
    out: list[Formula] = []
    stack = list(f.parts)
    while stack:
        p = stack.pop(0)
        if isinstance(p, And):
            stack = list(p.parts) + stack
        else:
            out.append(p)
    return out
