"""Derived predicates and the paper's example queries (Section 4).

The paper observes that all eight 4-intersection relations are definable
from ``connect`` alone (``connect(r, r') = not disjoint(r, r')``, i.e.
the closures intersect)::

    r ⊆ r'      =  ∀r''. connect(r, r'') → connect(r', r'')
    overlap     =  ∃r''. (r'' ⊆ r ∧ r'' ⊆ r') ∧ ¬(r ⊆ r') ∧ ¬(r' ⊆ r)
    meet        =  connect ∧ ¬overlap ∧ ¬⊆ ∧ ¬⊇
    ...

We provide both the primitive atoms (evaluators implement them directly)
and these *definitional* constructors, so the definability claim can be
tested by comparing the two (see tests).  Also included: the separating
queries of Examples 4.1 and 4.2 and ``path``.
"""

from __future__ import annotations

from .ast import (
    And,
    ExistsRegion,
    ForAllRegion,
    Formula,
    NameConst,
    Not,
    Or,
    RegionTerm,
    RegionVar,
    Rel,
    Ext,
)

__all__ = [
    "connect",
    "disjoint",
    "subset_via_connect",
    "overlap_via_connect",
    "meet_via_connect",
    "equal_via_connect",
    "region",
    "path",
    "triple_intersection_query",
    "connected_intersection_query",
    "disjoint_paths_query",
    "three_disjoint_paths_negation",
    "FIG_7A_SEPARATING_PAIRS",
]


def region(name: str) -> RegionTerm:
    """Shorthand: ``ext(NAME)`` for a name constant, as in the paper's
    sugar ``inside(p, A)``."""
    return Ext(NameConst(name))


def connect(p: RegionTerm, q: RegionTerm) -> Formula:
    return Rel("connect", p, q)


def disjoint(p: RegionTerm, q: RegionTerm) -> Formula:
    return Rel("disjoint", p, q)


# -- definability from connect (Section 4) -------------------------------------

_FRESH = ["w1", "w2", "w3"]


def subset_via_connect(p: RegionTerm, q: RegionTerm, fresh: str = "w1") -> Formula:
    """``p ⊆ q`` as ∀w. connect(p, w) → connect(q, w)."""
    w = RegionVar(fresh)
    from .ast import Implies

    return ForAllRegion(fresh, Implies(connect(p, w), connect(q, w)))


def overlap_via_connect(p: RegionTerm, q: RegionTerm) -> Formula:
    w = RegionVar("w2")
    return And(
        ExistsRegion(
            "w2",
            And(
                subset_via_connect(w, p, "w3"),
                subset_via_connect(w, q, "w3"),
            ),
        ),
        Not(subset_via_connect(p, q)),
        Not(subset_via_connect(q, p)),
    )


def meet_via_connect(p: RegionTerm, q: RegionTerm) -> Formula:
    return And(
        connect(p, q),
        Not(overlap_via_connect(p, q)),
        Not(subset_via_connect(p, q)),
        Not(subset_via_connect(q, p)),
    )


def equal_via_connect(p: RegionTerm, q: RegionTerm) -> Formula:
    return And(
        subset_via_connect(p, q), subset_via_connect(q, p)
    )


# -- the paper's example queries ---------------------------------------------------


def path(
    a: RegionTerm,
    r: RegionTerm,
    b: RegionTerm,
    avoiding: tuple[RegionTerm, ...] = (),
) -> Formula:
    """The paper's ``path(A, r, B)``: *r* connects *a* and *b* while
    avoiding the listed regions."""
    parts: list[Formula] = [connect(a, r), connect(b, r)]
    parts.extend(Not(connect(other, r)) for other in avoiding)
    return And(*parts)


def triple_intersection_query(
    a: str = "A", b: str = "B", c: str = "C"
) -> Formula:
    """Example 4.1: ``∃r . r ⊆ A ∩ B ∩ C`` — separates Fig. 1a from 1b.

    ``r ⊆ X ∩ Y`` is ``inside-or-covered``: we use the primitive
    relations: r inside-ish each region, expressed as
    ``¬disjoint interior``…  Following the paper's sugar
    ``inside(r, A) ∧ inside(r, B) ∧ inside(r, C)``.
    """
    r = RegionVar("r")
    return ExistsRegion(
        "r",
        And(
            Rel("subset", r, region(a)),
            Rel("subset", r, region(b)),
            Rel("subset", r, region(c)),
        ),
    )


def connected_intersection_query(a: str = "A", b: str = "B") -> Formula:
    """Example 4.2: ``A ∩ B`` is topologically connected — separates
    Fig. 1c from Fig. 1d.

    ∀r ∀r' (r, r' ⊆ A ∩ B → ∃r''. r'' ⊆ A ∩ B ∧ connect(r'', r) ∧
    connect(r'', r'')).
    """
    r, rp, rpp = RegionVar("r"), RegionVar("rp"), RegionVar("rpp")

    def inside_both(t: RegionTerm) -> Formula:
        return And(
            Rel("subset", t, region(a)), Rel("subset", t, region(b))
        )

    from .ast import Implies

    return ForAllRegion(
        "r",
        ForAllRegion(
            "rp",
            Implies(
                And(inside_both(r), inside_both(rp)),
                ExistsRegion(
                    "rpp",
                    And(
                        inside_both(rpp),
                        connect(rpp, r),
                        connect(rpp, rp),
                    ),
                ),
            ),
        ),
    )


def disjoint_paths_query(
    pair1: tuple[str, str] = ("A", "B"),
    pair2: tuple[str, str] = ("C", "D"),
) -> Formula:
    """Example 4.2 (Fig. 7b): disjoint connections between two pairs.

    ``∃r ∃r' . path(A, r, B) ∧ path(C, r', D) ∧ disjoint(r, r')`` where
    each path avoids the other pair's regions.
    """
    r, rp = RegionVar("r"), RegionVar("rp")
    a, b = pair1
    c, d = pair2
    return ExistsRegion(
        "r",
        ExistsRegion(
            "rp",
            And(
                path(region(a), r, region(b), (region(c), region(d))),
                path(region(c), rp, region(d), (region(a), region(b))),
                disjoint(r, rp),
            ),
        ),
    )


#: The pairing that separates the Fig. 7a instances of this repo's
#: dataset: it is linkable when both flowers have the same chirality and
#: unlinkable when one is mirrored.  (Which pairing separates depends on
#: the concrete layout; exactly one of the six pairings is linkable for
#: each chirality, and the linkable one flips with it.)
FIG_7A_SEPARATING_PAIRS = [("A", "E"), ("B", "D"), ("C", "F")]


def three_disjoint_paths_negation(
    pairs=None,
) -> Formula:
    """Example 4.2 (Fig. 7a): the negated three-disjoint-paths query

    ``¬(∃r ∃r' ∃r'' . path(X1,r,Y1) ∧ path(X2,r',Y2) ∧ path(X3,r'',Y3) ∧
    pairwise-disjoint)`` — each path avoiding the other pairs' regions.
    """
    if pairs is None:
        pairs = FIG_7A_SEPARATING_PAIRS
    (x1, y1), (x2, y2), (x3, y3) = pairs
    all_names = {x1, y1, x2, y2, x3, y3}
    r, rp, rpp = RegionVar("r"), RegionVar("rp"), RegionVar("rpp")

    def others(*mine: str) -> tuple[RegionTerm, ...]:
        return tuple(region(n) for n in sorted(all_names - set(mine)))

    inner = And(
        path(region(x1), r, region(y1), others(x1, y1)),
        path(region(x2), rp, region(y2), others(x2, y2)),
        path(region(x3), rpp, region(y3), others(x3, y3)),
        disjoint(r, rp),
        disjoint(r, rpp),
        disjoint(rp, rpp),
    )
    return Not(
        ExistsRegion("r", ExistsRegion("rp", ExistsRegion("rpp", inner)))
    )
