"""Point-based spatial logics (Section 5, *Relative Completeness*).

Two languages, as in the paper:

* ``FO(R, <, Region')`` — real variables, atoms ``x < y`` and
  ``a(x, y)`` ("the point (x, y) is in region a");
* ``FO(P, <x, <y, Region')`` — point variables, atoms ``p <x q``,
  ``p <y q`` and ``a(p)``.

Both are evaluated on rectilinear instances by the same order
abstraction as :mod:`repro.logic.rect_eval`: quantifiers range over the
instance's breakpoints, gap midpoints, and outer values, dynamically
extended by outer choices — complete for these S-generic structures.

Also provided:

* :func:`real_to_point` — the Proposition 5.7 translation showing
  ``FO_M(R, <) = FO(P, <x, <y)``: every real variable is simulated by a
  pair of point variables (one on each axis), with the ``sameorder``
  glue formula from the proof.  The translation assumes the instance
  lies in the open lower-right quadrant (use :func:`shift_to_quadrant`).
* :func:`rect_to_point` — the Theorem 5.8 translation embedding
  FO(Rect, ·) into FO(P, <x, <y, ·): each rectangle variable becomes its
  two corner points.  Rect-to-rect atoms translate completely; atoms
  against named regions translate for the fragment {connect, disjoint,
  subset, overlap}.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..errors import QueryError
from ..geometry import Location, Point
from ..regions import SpatialInstance
from . import ast as rast
from .rect_eval import instance_values

__all__ = [
    "RealVar",
    "PointVar",
    "RLess",
    "RRegion",
    "PLessX",
    "PLessY",
    "PRegion",
    "NotF",
    "AndF",
    "OrF",
    "ImpliesF",
    "RealExists",
    "RealForAll",
    "PointExists",
    "PointForAll",
    "evaluate_real",
    "evaluate_real_reference",
    "evaluate_point",
    "evaluate_point_reference",
    "real_to_point",
    "evaluate_real_via_points",
    "rect_to_point",
    "hoist_conjuncts",
    "shift_to_quadrant",
]


# -- terms and formulas --------------------------------------------------------


@dataclass(frozen=True)
class RealVar:
    name: str


@dataclass(frozen=True)
class PointVar:
    name: str


class PFormula:
    def __and__(self, other):
        return AndF(self, other)

    def __or__(self, other):
        return OrF(self, other)

    def __invert__(self):
        return NotF(self)


@dataclass(frozen=True)
class RLess(PFormula):
    left: RealVar
    right: RealVar


@dataclass(frozen=True)
class RRegion(PFormula):
    region: str
    x: RealVar
    y: RealVar


@dataclass(frozen=True)
class PLessX(PFormula):
    left: PointVar
    right: PointVar


@dataclass(frozen=True)
class PLessY(PFormula):
    left: PointVar
    right: PointVar


@dataclass(frozen=True)
class PRegion(PFormula):
    region: str
    point: PointVar


@dataclass(frozen=True)
class NotF(PFormula):
    inner: PFormula


class _NaryF(PFormula):
    def __init__(self, *parts: PFormula):
        if not parts:
            raise QueryError("empty connective")
        self.parts = tuple(parts)

    def __eq__(self, other):
        return type(self) is type(other) and self.parts == other.parts

    def __hash__(self):
        return hash((type(self).__name__, self.parts))


class AndF(_NaryF):
    pass


class OrF(_NaryF):
    pass


@dataclass(frozen=True)
class ImpliesF(PFormula):
    antecedent: PFormula
    consequent: PFormula


class _QuantF(PFormula):
    def __init__(self, variable: str, body: PFormula):
        self.variable = variable
        self.body = body

    def __eq__(self, other):
        return (
            type(self) is type(other)
            and self.variable == other.variable
            and self.body == other.body
        )

    def __hash__(self):
        return hash((type(self).__name__, self.variable, self.body))


class RealExists(_QuantF):
    pass


class RealForAll(_QuantF):
    pass


class PointExists(_QuantF):
    pass


class PointForAll(_QuantF):
    pass


# -- evaluation -----------------------------------------------------------------


#: Merged, sorted breakpoints of an instance — shared with
#: :mod:`repro.logic.rect_eval` and the compiled engine.
_instance_values = instance_values


def _candidates(values: list[Fraction]) -> list[Fraction]:
    if not values:
        return [Fraction(0)]
    out = [values[0] - 1]
    for a, b in zip(values, values[1:]):
        out.append(a)
        out.append((a + b) / 2)
    out.append(values[-1])
    out.append(values[-1] + 1)
    return out


def _free_vars(f: PFormula, cache: dict) -> frozenset[str]:
    """Free variable names of a point/real formula (memoized by id)."""
    got = cache.get(id(f))
    if got is not None:
        return got
    if isinstance(f, RLess):
        out = frozenset((f.left.name, f.right.name))
    elif isinstance(f, RRegion):
        out = frozenset((f.x.name, f.y.name))
    elif isinstance(f, (PLessX, PLessY)):
        out = frozenset((f.left.name, f.right.name))
    elif isinstance(f, PRegion):
        out = frozenset((f.point.name,))
    elif isinstance(f, NotF):
        out = _free_vars(f.inner, cache)
    elif isinstance(f, (AndF, OrF)):
        out = frozenset().union(
            *(_free_vars(p, cache) for p in f.parts)
        )
    elif isinstance(f, ImpliesF):
        out = _free_vars(f.antecedent, cache) | _free_vars(
            f.consequent, cache
        )
    elif isinstance(f, _QuantF):
        out = _free_vars(f.body, cache) - {f.variable}
    else:
        raise QueryError(f"unknown formula {type(f).__name__}")
    cache[id(f)] = out
    return out


def _flatten_and(f: PFormula) -> list[PFormula] | None:
    if not isinstance(f, AndF):
        return None
    out: list[PFormula] = []
    stack = list(f.parts)
    while stack:
        p = stack.pop(0)
        if isinstance(p, AndF):
            stack = list(p.parts) + stack
        else:
            out.append(p)
    return out


def hoist_conjuncts(f: PFormula) -> PFormula:
    """Pull conjuncts that do not mention a quantified variable out of
    its scope: ``Qv (a ∧ b(v))  ≡  a ∧ Qv b(v)`` (domains are nonempty).

    The translations of Prop. 5.7 and Theorem 5.8 produce deeply nested
    quantifier chains whose conjuncts often constrain only outer
    variables; hoisting lets the evaluator check them before entering
    inner quantifier loops, turning hopeless searches into fast ones.
    """
    cache: dict = {}

    def rec(g: PFormula) -> PFormula:
        if isinstance(g, NotF):
            return NotF(rec(g.inner))
        if isinstance(g, AndF):
            return AndF(*(rec(p) for p in g.parts))
        if isinstance(g, OrF):
            return OrF(*(rec(p) for p in g.parts))
        if isinstance(g, ImpliesF):
            return ImpliesF(rec(g.antecedent), rec(g.consequent))
        if isinstance(g, _QuantF):
            body = rec(g.body)
            parts = _flatten_and(body)
            if parts is not None:
                free_of = {
                    id(p): _free_vars(p, cache) for p in parts
                }
                outside = [
                    p for p in parts if g.variable not in free_of[id(p)]
                ]
                inside = [
                    p for p in parts if g.variable in free_of[id(p)]
                ]
                if outside and inside:
                    rebuilt = type(g)(
                        g.variable,
                        inside[0] if len(inside) == 1 else AndF(*inside),
                    )
                    return AndF(*outside, rebuilt)
                if outside and not inside:
                    # The quantifier is vacuous (nonempty domain).
                    return AndF(*outside)
            return type(g)(g.variable, body)
        return g

    return rec(f)


class _Evaluator:
    def __init__(self, instance: SpatialInstance, budget: int):
        self.instance = instance
        self.budget = budget
        self._fv_cache: dict = {}

    def _spend(self, n: int) -> None:
        self.budget -= n
        if self.budget < 0:
            raise QueryError("point/real quantifier search exceeded budget")

    def _partition_body(self, f: _QuantF, env: dict):
        """For an existential with a conjunctive body: the conjuncts that
        become fully bound once this variable is assigned (candidate
        filters) and the rest (recursed into only for survivors)."""
        parts = _flatten_and(f.body)
        if parts is None:
            return None, f.body
        bound_names = set(env) | {f.variable}
        now = [
            p
            for p in parts
            if _free_vars(p, self._fv_cache) <= bound_names
        ]
        later = [
            p
            for p in parts
            if not (_free_vars(p, self._fv_cache) <= bound_names)
        ]
        rest: PFormula | None
        if not later:
            rest = None
        elif len(later) == 1:
            rest = later[0]
        else:
            rest = AndF(*later)
        return now, rest

    def eval(self, f: PFormula, vals: list[Fraction], env: dict) -> bool:
        if isinstance(f, RLess):
            return env[f.left.name] < env[f.right.name]
        if isinstance(f, RRegion):
            p = Point(env[f.x.name], env[f.y.name])
            return (
                self.instance.ext(f.region).classify(p)
                is Location.INTERIOR
            )
        if isinstance(f, PLessX):
            return env[f.left.name].x < env[f.right.name].x
        if isinstance(f, PLessY):
            return env[f.left.name].y < env[f.right.name].y
        if isinstance(f, PRegion):
            return (
                self.instance.ext(f.region).classify(env[f.point.name])
                is Location.INTERIOR
            )
        if isinstance(f, NotF):
            return not self.eval(f.inner, vals, env)
        if isinstance(f, AndF):
            return all(self.eval(p, vals, env) for p in f.parts)
        if isinstance(f, OrF):
            return any(self.eval(p, vals, env) for p in f.parts)
        if isinstance(f, ImpliesF):
            return (not self.eval(f.antecedent, vals, env)) or self.eval(
                f.consequent, vals, env
            )
        if isinstance(f, (RealExists, RealForAll)):
            want = isinstance(f, RealExists)
            cands = _candidates(vals)
            self._spend(len(cands))
            filters, rest = (
                self._partition_body(f, env) if want else (None, f.body)
            )
            for v in cands:
                env2 = dict(env)
                env2[f.variable] = v
                vals2 = sorted(set(vals) | {v})
                if filters is not None and not all(
                    self.eval(p, vals2, env2) for p in filters
                ):
                    continue
                body = rest if filters is not None else f.body
                if body is None:
                    return want
                if self.eval(body, vals2, env2) == want:
                    return want
            return not want
        if isinstance(f, (PointExists, PointForAll)):
            want = isinstance(f, PointExists)
            cands = _candidates(vals)
            self._spend(len(cands) ** 2)
            filters, rest = (
                self._partition_body(f, env) if want else (None, f.body)
            )
            for vx in cands:
                for vy in cands:
                    env2 = dict(env)
                    env2[f.variable] = Point(vx, vy)
                    vals2 = sorted(set(vals) | {vx, vy})
                    if filters is not None and not all(
                        self.eval(p, vals2, env2) for p in filters
                    ):
                        continue
                    body = rest if filters is not None else f.body
                    if body is None:
                        return want
                    if self.eval(body, vals2, env2) == want:
                        return want
            return not want
        raise QueryError(f"cannot evaluate {type(f).__name__}")


def evaluate_real(
    formula: PFormula,
    instance: SpatialInstance,
    budget: int = 5_000_000,
    engine: str = "compiled",
) -> bool:
    """Evaluate an FO(R, <, Region') sentence on a rectilinear instance.

    ``engine`` selects ``"compiled"`` (slab tables + memoized closures,
    the default) or ``"reference"`` (this module's direct interpreter);
    both return identical answers.
    """
    if engine == "reference":
        return evaluate_real_reference(formula, instance, budget)
    if engine != "compiled":
        raise QueryError(
            f"unknown engine {engine!r}; expected 'compiled' or 'reference'"
        )
    from .compiled import evaluate_real_compiled

    return evaluate_real_compiled(formula, instance, budget)


def evaluate_real_reference(
    formula: PFormula,
    instance: SpatialInstance,
    budget: int = 5_000_000,
) -> bool:
    """The seed FO(R, <, Region') evaluator — the semantic baseline."""
    return _Evaluator(instance, budget).eval(
        formula, _instance_values(instance), {}
    )


def evaluate_point(
    formula: PFormula,
    instance: SpatialInstance,
    budget: int = 5_000_000,
    engine: str = "compiled",
) -> bool:
    """Evaluate an FO(P, <x, <y, Region') sentence likewise."""
    if engine == "reference":
        return evaluate_point_reference(formula, instance, budget)
    if engine != "compiled":
        raise QueryError(
            f"unknown engine {engine!r}; expected 'compiled' or 'reference'"
        )
    from .compiled import evaluate_point_compiled

    return evaluate_point_compiled(formula, instance, budget)


def evaluate_point_reference(
    formula: PFormula,
    instance: SpatialInstance,
    budget: int = 5_000_000,
) -> bool:
    """The seed FO(P, <x, <y, Region') evaluator — the baseline."""
    return _Evaluator(instance, budget).eval(
        formula, _instance_values(instance), {}
    )


# -- Proposition 5.7: FO_M(R, <) = FO(P, <x, <y) --------------------------------


def _eq_x(p: PointVar, q: PointVar) -> PFormula:
    return AndF(NotF(PLessX(p, q)), NotF(PLessX(q, p)))


def _eq_y(p: PointVar, q: PointVar) -> PFormula:
    return AndF(NotF(PLessY(p, q)), NotF(PLessY(q, p)))


def _iff(a: PFormula, b: PFormula) -> PFormula:
    return AndF(ImpliesF(a, b), ImpliesF(b, a))


def _sameorder(
    p: PointVar, pn: PointVar, q: PointVar, qn: PointVar
) -> PFormula:
    """The proof's ``sameorder``: p, pn share a y-level; q, qn share an
    x-level; and the x-order of (p, pn) matches the y-order of (q, qn)."""
    return AndF(
        _eq_y(p, pn),
        _eq_x(q, qn),
        _iff(PLessX(p, pn), PLessY(q, qn)),
        _iff(PLessX(pn, p), PLessY(qn, q)),
    )


def real_to_point(formula: PFormula) -> PFormula:
    """Translate an FO(R, <) sentence to FO(P, <x, <y) (Prop. 5.7).

    Each real variable z becomes two point variables ``p_z`` and ``q_z``
    (its shadows on the two axes); see the proof for the ``related``
    invariant.  The result is equivalent on instances inside the open
    lower-right quadrant for M-generic inputs.
    """

    def pv(z: str) -> PointVar:
        return PointVar(f"p_{z}")

    def qv(z: str) -> PointVar:
        return PointVar(f"q_{z}")

    def tr(f: PFormula, scope: tuple[str, ...]) -> PFormula:
        if isinstance(f, RLess):
            return PLessX(pv(f.left.name), pv(f.right.name))
        if isinstance(f, RRegion):
            r = PointVar(f"r_{f.x.name}_{f.y.name}")
            return PointExists(
                r.name,
                AndF(
                    _eq_x(r, pv(f.x.name)),
                    _eq_y(r, qv(f.y.name)),
                    PRegion(f.region, r),
                ),
            )
        if isinstance(f, NotF):
            return NotF(tr(f.inner, scope))
        if isinstance(f, AndF):
            return AndF(*(tr(p, scope) for p in f.parts))
        if isinstance(f, OrF):
            return OrF(*(tr(p, scope) for p in f.parts))
        if isinstance(f, ImpliesF):
            return ImpliesF(
                tr(f.antecedent, scope), tr(f.consequent, scope)
            )
        if isinstance(f, RealForAll):
            # ∀z ψ = ¬∃z ¬ψ, translated through the existential case.
            return NotF(tr(RealExists(f.variable, NotF(f.body)), scope))
        if isinstance(f, RealExists):
            z = f.variable
            inner = tr(f.body, scope + (z,))
            others = ("_origin", *scope)
            # sameorder glue, with each conjunct emitted at the earliest
            # level where its variables are bound: the p-parts (all p's
            # share a horizontal line) right under ∃p_z, the q-parts and
            # the order-matching biconditionals under ∃q_z.
            p_parts = [_eq_y(pv(z0), pv(z)) for z0 in others]
            q_parts: list[PFormula] = [
                _eq_x(qv(z0), qv(z)) for z0 in others
            ]
            for z0 in others:
                q_parts.append(
                    _iff(PLessX(pv(z0), pv(z)), PLessY(qv(z0), qv(z)))
                )
                q_parts.append(
                    _iff(PLessX(pv(z), pv(z0)), PLessY(qv(z), qv(z0)))
                )
            return PointExists(
                pv(z).name,
                AndF(
                    *p_parts,
                    PointExists(qv(z).name, AndF(*q_parts, inner)),
                ),
            )
        raise QueryError(
            f"cannot translate {type(f).__name__} (FO(R,<) fragment)"
        )

    core = tr(formula, ())
    p0, q0 = pv("_origin"), qv("_origin")
    return PointExists(
        p0.name,
        PointExists(
            q0.name,
            AndF(_eq_x(p0, q0), _eq_y(p0, q0), hoist_conjuncts(core)),
        ),
    )


def evaluate_real_via_points(
    formula: PFormula,
    instance: SpatialInstance,
    budget: int = 50_000_000,
    engine: str = "compiled",
) -> bool:
    """Evaluate an FO(R, <) sentence through its Prop. 5.7 translation.

    The instance must lie in the open lower-right quadrant (use
    :func:`shift_to_quadrant`).  As in the proof, the auxiliary origin
    pair is pinned at a concrete diagonal point separating the
    quadrant's coordinates, instead of being searched for — genericity
    makes the choice immaterial and saves two quantifier levels.
    """
    vals = _instance_values(instance)
    box = instance.bbox()
    if box.xmin <= 0 or box.ymax >= 0:
        raise QueryError(
            "instance must lie in the open lower-right quadrant; "
            "apply shift_to_quadrant first"
        )
    origin = Point(0, 0)

    def pv(z: str) -> str:
        return f"p_{z}"

    def qv(z: str) -> str:
        return f"q_{z}"

    # Translate without the outer origin quantifiers.
    core = real_to_point(formula)
    # Unwrap: PointExists(p0, PointExists(q0, And(eqx, eqy, body))).
    body = core.body.body.parts[-1]
    env = {pv("_origin"): origin, qv("_origin"): origin}
    start_vals = sorted(set(vals) | {Fraction(0)})
    if engine == "reference":
        evaluator = _Evaluator(instance, budget)
        return evaluator.eval(body, start_vals, env)
    if engine != "compiled":
        raise QueryError(
            f"unknown engine {engine!r}; expected 'compiled' or 'reference'"
        )
    from .compiled import evaluate_point_compiled

    return evaluate_point_compiled(
        body, instance, budget, env=env, vals=start_vals
    )


def shift_to_quadrant(instance: SpatialInstance) -> SpatialInstance:
    """Translate the instance into the open lower-right quadrant
    (x > 0, y < 0), the precondition of the Prop. 5.7 translation."""
    from ..regions import Rect, RectUnion

    box = instance.bbox()
    dx = 1 - box.xmin
    dy = -1 - box.ymax

    def move(_name, region):
        if isinstance(region, Rect):
            return Rect(
                region.x1 + dx, region.y1 + dy,
                region.x2 + dx, region.y2 + dy,
            )
        if isinstance(region, RectUnion):
            return RectUnion(
                [
                    Rect(r.x1 + dx, r.y1 + dy, r.x2 + dx, r.y2 + dy)
                    for r in region.rects
                ],
                validate=False,
            )
        raise QueryError("shift_to_quadrant needs a rectilinear instance")

    return instance.map_regions(move)


# -- Theorem 5.8: FO(Rect, ·) -> FO_S(P, <x, <y, ·) ------------------------------


def rect_to_point(formula: rast.Formula) -> PFormula:
    """Translate an FO(Rect, ·) sentence into FO(P, <x, <y, ·).

    Each rectangle variable r becomes two point variables ``lo_r`` and
    ``hi_r`` (opposite corners).  Rect-to-rect atoms translate for all
    relations; atoms against named regions for the fragment
    {connect, disjoint, subset, overlap}.
    """

    def lo(r: str) -> PointVar:
        return PointVar(f"lo_{r}")

    def hi(r: str) -> PointVar:
        return PointVar(f"hi_{r}")

    fresh = [0]

    def freshvar(prefix: str) -> PointVar:
        fresh[0] += 1
        return PointVar(f"{prefix}{fresh[0]}")

    def leq_x(a, b):
        return NotF(PLessX(b, a))

    def leq_y(a, b):
        return NotF(PLessY(b, a))

    def in_box(l, h, p) -> PFormula:
        return AndF(
            PLessX(l, p), PLessX(p, h), PLessY(l, p), PLessY(p, h)
        )

    def rr_atom(rel: str, r1: str, r2: str) -> PFormula:
        l1, h1, l2, h2 = lo(r1), hi(r1), lo(r2), hi(r2)
        ii = AndF(
            PLessX(l1, h2), PLessX(l2, h1), PLessY(l1, h2), PLessY(l2, h1)
        )
        disj = OrF(
            PLessX(h1, l2), PLessX(h2, l1), PLessY(h1, l2), PLessY(h2, l1)
        )
        sub12 = AndF(leq_x(l2, l1), leq_x(h1, h2), leq_y(l2, l1), leq_y(h1, h2))
        sub21 = AndF(leq_x(l1, l2), leq_x(h2, h1), leq_y(l1, l2), leq_y(h2, h1))
        strict12 = AndF(
            PLessX(l2, l1), PLessX(h1, h2), PLessY(l2, l1), PLessY(h1, h2)
        )
        strict21 = AndF(
            PLessX(l1, l2), PLessX(h2, h1), PLessY(l1, l2), PLessY(h2, h1)
        )
        eq = AndF(sub12, sub21)
        if rel == "disjoint":
            return disj
        if rel == "connect":
            return NotF(disj)
        if rel == "subset":
            return sub12
        if rel == "equal":
            return eq
        if rel == "overlap":
            return AndF(ii, NotF(sub12), NotF(sub21))
        if rel == "meet":
            return AndF(NotF(ii), NotF(disj))
        if rel == "inside":
            return strict12
        if rel == "contains":
            return strict21
        if rel == "coveredBy":
            return AndF(sub12, NotF(strict12), NotF(eq))
        if rel == "covers":
            return AndF(sub21, NotF(strict21), NotF(eq))
        raise QueryError(f"untranslatable rect relation {rel!r}")

    def ra_atom(rel: str, r: str, name: str) -> PFormula:
        l, h = lo(r), hi(r)
        if rel in ("overlap", "subset"):
            p = freshvar("w")
            inside = in_box(l, h, p)
            if rel == "overlap":
                return PointExists(
                    p.name, AndF(inside, PRegion(name, p))
                )
            return PointForAll(
                p.name, ImpliesF(inside, PRegion(name, p))
            )
        if rel in ("connect", "disjoint"):
            # closure(r) touches closure(A) iff every box strictly
            # containing r contains a point of A.
            bl, bh = freshvar("bl"), freshvar("bh")
            p = freshvar("w")
            strictly_around = AndF(
                PLessX(bl, l), PLessX(h, bh), PLessY(bl, l), PLessY(h, bh)
            )
            touches = PointForAll(
                bl.name,
                PointForAll(
                    bh.name,
                    ImpliesF(
                        strictly_around,
                        PointExists(
                            p.name,
                            AndF(in_box(bl, bh, p), PRegion(name, p)),
                        ),
                    ),
                ),
            )
            return touches if rel == "connect" else NotF(touches)
        raise QueryError(
            f"relation {rel!r} against a named region is outside the "
            "translated fragment"
        )

    def tr(f: rast.Formula) -> PFormula:
        if isinstance(f, rast.Rel):
            left, right = f.left, f.right
            if isinstance(left, rast.RegionVar) and isinstance(
                right, rast.RegionVar
            ):
                return rr_atom(f.relation, left.name, right.name)
            if isinstance(left, rast.RegionVar) and isinstance(
                right, rast.Ext
            ):
                return ra_atom(f.relation, left.name, right.name.value)
            if isinstance(left, rast.Ext) and isinstance(
                right, rast.RegionVar
            ):
                inverse = {
                    "connect": "connect",
                    "disjoint": "disjoint",
                    "overlap": "overlap",
                }.get(f.relation)
                if inverse is None:
                    raise QueryError(
                        f"relation {f.relation!r} with the named region "
                        "on the left is outside the translated fragment"
                    )
                return ra_atom(inverse, right.name, left.name.value)
            raise QueryError("atom between two named regions: inline it")
        if isinstance(f, rast.Not):
            return NotF(tr(f.inner))
        if isinstance(f, rast.And):
            return AndF(*(tr(p) for p in f.parts))
        if isinstance(f, rast.Or):
            return OrF(*(tr(p) for p in f.parts))
        if isinstance(f, rast.Implies):
            return ImpliesF(tr(f.antecedent), tr(f.consequent))
        if isinstance(f, (rast.ExistsRegion, rast.ForAllRegion)):
            r = f.variable
            corners = AndF(
                PLessX(lo(r), hi(r)), PLessY(lo(r), hi(r))
            )
            body = tr(f.body)
            if isinstance(f, rast.ExistsRegion):
                return PointExists(
                    lo(r).name,
                    PointExists(hi(r).name, AndF(corners, body)),
                )
            return PointForAll(
                lo(r).name,
                PointForAll(hi(r).name, ImpliesF(corners, body)),
            )
        raise QueryError(
            f"cannot translate {type(f).__name__} to point logic"
        )

    return hoist_conjuncts(tr(formula))
