"""Cell semantics for FO(Region, Region') — the paper's Section 7
tractable language.

Quantified region variables range over *cell regions*: open,
disc-homeomorphic unions of cells of the instance's arrangement,
optionally refined by a grid overlay.  This is exactly the language the
paper's conclusion proposes ("a stronger quantifier ranges over all
possible unions of cells that are disc homeomorphs"); with it, the
separating queries of Examples 4.1 and 4.2 are decidable, while the
*unrestricted* languages of Section 4 are undecidable (Theorem 6.1) and
cannot have a complete evaluator at all.

Every atom is decided combinatorially: a cell region's interior is a set
of cells, its boundary another, and the 4-intersection matrix of two
values is read off set intersections — no geometry at query time.

Evaluation cost grows exponentially with region quantifier depth (the
paper's PSPACE query complexity); the ``max_faces`` cap bounds the size
of quantified regions and a ``QueryError`` reports when the enumeration
budget is exhausted rather than silently truncating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from ..arrangement import Subdivision, compute_labels, planarize
from ..arrangement.complex import CellComplex, _reduce
from ..errors import QueryError
from ..geometry import Point, Segment
from ..regions import SpatialInstance
from .ast import (
    And,
    Ext,
    ExistsName,
    ExistsRegion,
    ForAllName,
    ForAllRegion,
    Formula,
    Implies,
    NameConst,
    NameEq,
    NameTerm,
    NameVar,
    Not,
    Or,
    RegionTerm,
    RegionVar,
    Rel,
)

__all__ = [
    "CellModel",
    "CellRegionValue",
    "evaluate_cells",
    "evaluate_cells_reference",
    "grid_refined_complex",
    "coarse_grid_complex",
]


def grid_refined_complex(
    instance: SpatialInstance, levels: int = 0
) -> CellComplex:
    """The instance's cell complex, refined by *levels* grid overlays.

    Each overlay adds horizontal and vertical lines through every
    arrangement breakpoint and through the midpoints between consecutive
    breakpoints, splitting large faces (in particular the exterior) into
    many cells so that quantified regions have room to maneuver.
    """
    segments: list[Segment] = []
    for _name, region in instance.items():
        segments.extend(region.boundary_segments())
    for _ in range(levels):
        xs = sorted({p.x for s in segments for p in s.endpoints()})
        ys = sorted({p.y for s in segments for p in s.endpoints()})
        xs = _with_midpoints_and_margins(xs)
        ys = _with_midpoints_and_margins(ys)
        x_lo, x_hi = xs[0], xs[-1]
        y_lo, y_hi = ys[0], ys[-1]
        grid = [Segment(Point(x, y_lo), Point(x, y_hi)) for x in xs]
        grid += [Segment(Point(x_lo, y), Point(x_hi, y)) for y in ys]
        segments = planarize(segments + grid)
    # The loop leaves an already-planar segment set; only the
    # unrefined case still needs the pass.
    pieces = segments if levels else planarize(segments)
    sub = Subdivision(pieces)
    labels = compute_labels(instance, sub)
    return _reduce(sub, labels)


def _with_midpoints_and_margins(values):
    out = []
    for a, b in zip(values, values[1:]):
        out.append(a)
        out.append((a + b) / 2)
    out.append(values[-1])
    return [values[0] - 1, *out, values[-1] + 1]


def coarse_grid_complex(
    instance: SpatialInstance, lines: int | None = None
) -> CellComplex:
    """The instance's complex overlaid with an adaptive coarse grid.

    Unlike :func:`grid_refined_complex` (which refines at *every*
    breakpoint), this adds one line through the midpoint of every gap
    between consecutive breakpoints plus a surrounding band — adapted to
    the instance's features (dense where they are, absent elsewhere), so
    the exterior splits into enough faces for path witnesses without a
    combinatorial explosion.  Passing ``lines`` switches to that many
    uniformly spaced lines instead.
    """
    from fractions import Fraction

    segments: list[Segment] = []
    for _name, region in instance.items():
        segments.extend(region.boundary_segments())
    xs = sorted({p.x for s in segments for p in s.endpoints()})
    ys = sorted({p.y for s in segments for p in s.endpoints()})
    x_lo, x_hi = xs[0] - 2, xs[-1] + 2
    y_lo, y_hi = ys[0] - 2, ys[-1] + 2
    if lines is None:
        grid_x = [(a + b) / 2 for a, b in zip(xs, xs[1:])]
        grid_y = [(a + b) / 2 for a, b in zip(ys, ys[1:])]
    else:
        grid_x = [
            x_lo + (x_hi - x_lo) * Fraction(k, lines + 1)
            for k in range(1, lines + 1)
        ]
        grid_y = [
            y_lo + (y_hi - y_lo) * Fraction(k, lines + 1)
            for k in range(1, lines + 1)
        ]
    # A closed band around everything so paths can go around the outside.
    grid_x += [x_lo, x_hi]
    grid_y += [y_lo, y_hi]
    outer_x = (x_lo - 1, x_hi + 1)
    outer_y = (y_lo - 1, y_hi + 1)
    grid: list[Segment] = []
    for x in sorted(set(grid_x)):
        grid.append(Segment(Point(x, outer_y[0]), Point(x, outer_y[1])))
    for y in sorted(set(grid_y)):
        grid.append(Segment(Point(outer_x[0], y), Point(outer_x[1], y)))
    pieces = planarize(segments + grid)
    sub = Subdivision(pieces)
    labels = compute_labels(instance, sub)
    return _reduce(sub, labels)


@dataclass(frozen=True)
class CellRegionValue:
    """A region value under cell semantics.

    ``interior`` is the set of cells forming the open set; ``closure``
    adds the incident lower-dimensional cells; ``boundary`` is their
    difference.
    """

    interior: frozenset[str]
    closure: frozenset[str]

    @property
    def boundary(self) -> frozenset[str]:
        return self.closure - self.interior


class CellModel:
    """Evaluation context: a (refined) cell complex plus enumeration."""

    def __init__(
        self,
        instance: SpatialInstance,
        refinement: int = 0,
        max_faces: int | None = None,
        max_regions: int = 200_000,
        complex: CellComplex | None = None,
    ):
        self.instance = instance
        self.complex = complex or grid_refined_complex(instance, refinement)
        self.max_faces = max_faces
        self.max_regions = max_regions
        cx = self.complex
        self._faces = sorted(c.id for c in cx.faces)
        self._down: dict[str, set[str]] = {f: set() for f in self._faces}
        self._up: dict[str, set[str]] = {}
        for (a, b) in cx.incidences:
            self._up.setdefault(a, set()).add(b)
            if b in self._down:
                self._down[b].add(a)
        # Edge -> its (one or two) faces; vertex -> incident edges/faces.
        self._edge_faces: dict[str, frozenset[str]] = {
            e.id: frozenset(
                x for x in self._up.get(e.id, ()) if x in self._down
            )
            for e in cx.edges
        }
        self._vertex_star: dict[str, frozenset[str]] = {
            v.id: frozenset(self._up.get(v.id, ()))
            for v in cx.vertices
        }
        self._face_adj: dict[str, set[tuple[str, str]]] = {}
        for e, faces in self._edge_faces.items():
            fs = sorted(faces)
            if len(fs) == 2:
                self._face_adj.setdefault(fs[0], set()).add((e, fs[1]))
                self._face_adj.setdefault(fs[1], set()).add((e, fs[0]))
        self._named: dict[str, CellRegionValue] = {}
        self._all_regions_cache: list[CellRegionValue] | None = None

    # -- values ------------------------------------------------------------------

    def named_region(self, name: str) -> CellRegionValue:
        """``ext(name)`` as a cell region value."""
        if name not in self._named:
            cx = self.complex
            idx = cx.names.index(name)
            interior = frozenset(
                cid for cid, cell in cx.cells.items()
                if cell.label[idx] == "o"
            )
            boundary = frozenset(
                cid for cid, cell in cx.cells.items()
                if cell.label[idx] == "b"
            )
            self._named[name] = CellRegionValue(
                interior, interior | boundary
            )
        return self._named[name]

    def region_from_faces(self, faces: frozenset[str]) -> CellRegionValue:
        """The open cell region generated by a set of faces."""
        interior = set(faces)
        for e, fs in self._edge_faces.items():
            if fs and fs <= faces:
                interior.add(e)
        for v, star in self._vertex_star.items():
            if star and star <= interior:
                interior.add(v)
        closure = set(interior)
        for f in faces:
            closure |= self._down[f]
        for c in list(closure):
            closure |= self._down.get(c, set())
        return CellRegionValue(frozenset(interior), frozenset(closure))

    def is_disc(self, faces: frozenset[str]) -> bool:
        """Is the open region generated by *faces* a disc homeomorph?

        Connected through shared included edges, and simply connected
        (the closed complement on the sphere is connected).
        """
        if not faces:
            return False
        value = self.region_from_faces(faces)
        # Connectivity of faces through interior edges.
        start = next(iter(faces))
        seen = {start}
        stack = [start]
        while stack:
            f = stack.pop()
            for (e, g) in self._face_adj.get(f, ()):
                if g in faces and e in value.interior and g not in seen:
                    seen.add(g)
                    stack.append(g)
        if len(seen) != len(faces):
            return False
        # Complement connectivity on the sphere.
        cx = self.complex
        complement = [
            c for c in cx.cells if c not in value.interior
        ]
        nodes = set(complement)
        ext = cx.exterior_face
        has_inf = True  # the point at infinity
        adj: dict[str, set[str]] = {c: set() for c in nodes}
        for (a, b) in cx.incidences:
            if a in nodes and b in nodes:
                adj[a].add(b)
                adj[b].add(a)
        total = len(nodes) + (1 if has_inf else 0)
        if not nodes:
            return True  # the whole plane
        if ext in nodes:
            start_c = ext
            inf_reached = True
        else:
            start_c = sorted(nodes)[0]
            inf_reached = False
        seen_c = {start_c}
        stack = [start_c]
        while stack:
            c = stack.pop()
            for d in adj[c]:
                if d not in seen_c:
                    seen_c.add(d)
                    stack.append(d)
        if ext in seen_c:
            inf_reached = True
        return len(seen_c) == len(nodes) and inf_reached

    # -- quantifier range -----------------------------------------------------------

    def all_disc_regions(self) -> list[CellRegionValue]:
        """Every disc cell region (subject to the ``max_faces`` cap).

        Enumerates connected face sets by canonical expansion, filters by
        the disc test.  Raises :class:`QueryError` when the enumeration
        exceeds ``max_regions`` — a loud cap, never a silent truncation.
        """
        if self._all_regions_cache is not None:
            return self._all_regions_cache
        results: list[CellRegionValue] = []
        face_list = self._faces
        index = {f: i for i, f in enumerate(face_list)}
        budget = self.max_regions

        def neighbours(f: str) -> list[str]:
            return [g for (_e, g) in self._face_adj.get(f, ())]

        # Connected-subset enumeration: grow from each anchor face, only
        # adding faces with index >= anchor to avoid duplicates.
        seen_sets: set[frozenset[str]] = set()
        for anchor in face_list:
            stack: list[frozenset[str]] = [frozenset((anchor,))]
            while stack:
                current = stack.pop()
                if current in seen_sets:
                    continue
                seen_sets.add(current)
                if len(seen_sets) > budget:
                    raise QueryError(
                        "cell-region enumeration exceeded "
                        f"{budget} candidates; lower the refinement, "
                        "set max_faces, or raise max_regions"
                    )
                if self.is_disc(current):
                    results.append(self.region_from_faces(current))
                if self.max_faces is not None and len(current) >= self.max_faces:
                    continue
                frontier = {
                    g
                    for f in current
                    for g in neighbours(f)
                    if g not in current and index[g] >= index[anchor]
                }
                for g in sorted(frontier):
                    stack.append(current | {g})
        self._all_regions_cache = results
        return results


# -- atom semantics ---------------------------------------------------------------


def _bits(
    p: CellRegionValue, q: CellRegionValue
) -> tuple[bool, bool, bool, bool]:
    return (
        bool(p.interior & q.interior),
        bool(p.interior & q.boundary),
        bool(p.boundary & q.interior),
        bool(p.boundary & q.boundary),
    )


_MATRIX_OF = {
    "disjoint": (False, False, False, False),
    "meet": (False, False, False, True),
    "overlap": (True, True, True, True),
    "equal": (True, False, False, True),
    "inside": (True, False, True, False),
    "contains": (True, True, False, False),
    "coveredBy": (True, False, True, True),
    "covers": (True, True, False, True),
}


def _atom_holds(
    relation: str, p: CellRegionValue, q: CellRegionValue
) -> bool:
    if relation == "connect":
        return bool(p.closure & q.closure)
    if relation == "subset":
        return p.interior <= q.interior
    if relation == "equal":
        return p.interior == q.interior
    return _bits(p, q) == _MATRIX_OF[relation]


# -- the evaluator ------------------------------------------------------------------


def evaluate_cells(
    formula: Formula,
    instance: SpatialInstance,
    refinement: int = 0,
    max_faces: int | None = None,
    max_regions: int = 200_000,
    engine: str = "compiled",
    parallel: str = "serial",
    workers: int | None = None,
    timeout: float | None = None,
) -> bool:
    """Evaluate a sentence under cell semantics.

    ``refinement`` controls the grid overlay level (finer cells let
    quantified regions approximate more shapes); ``max_faces`` caps the
    size of quantified regions.  ``engine`` selects the evaluator:
    ``"compiled"`` (the bitmask engine of :mod:`repro.logic.compiled`,
    the default) or ``"reference"`` (this module's direct interpreter).
    Both return identical answers; ``parallel``/``workers``/``timeout``
    apply to the compiled engine only — ``timeout`` bounds universe
    enumeration, raising :class:`repro.errors.TimeoutError` when the
    budget is exceeded.
    """
    if engine == "reference":
        return evaluate_cells_reference(
            formula, instance, refinement, max_faces, max_regions
        )
    if engine != "compiled":
        raise QueryError(
            f"unknown engine {engine!r}; expected 'compiled' or 'reference'"
        )
    from .compiled import evaluate_cells_compiled

    return evaluate_cells_compiled(
        formula,
        instance,
        refinement,
        max_faces,
        max_regions,
        parallel=parallel,
        workers=workers,
        timeout=timeout,
    )


def evaluate_cells_reference(
    formula: Formula,
    instance: SpatialInstance,
    refinement: int = 0,
    max_faces: int | None = None,
    max_regions: int = 200_000,
) -> bool:
    """The seed evaluator: direct AST interpretation over frozensets.

    Kept verbatim as the semantic baseline the compiled engine is
    asserted against (bit-identical answers on every figure query)."""
    if not formula.is_sentence():
        raise QueryError("can only evaluate sentences")
    model = CellModel(instance, refinement, max_faces, max_regions)
    return _eval(formula, model, {}, {})


def _region_value(
    term: RegionTerm,
    model: CellModel,
    region_env: Mapping[str, CellRegionValue],
    name_env: Mapping[str, str],
) -> CellRegionValue:
    if isinstance(term, RegionVar):
        try:
            return region_env[term.name]
        except KeyError:
            raise QueryError(f"unbound region variable {term.name!r}") from None
    if isinstance(term, Ext):
        return model.named_region(_name_value(term.name, name_env))
    raise QueryError(f"not a region term: {term!r}")


def _name_value(term: NameTerm, name_env: Mapping[str, str]) -> str:
    if isinstance(term, NameConst):
        return term.value
    if isinstance(term, NameVar):
        try:
            return name_env[term.name]
        except KeyError:
            raise QueryError(f"unbound name variable {term.name!r}") from None
    raise QueryError(f"not a name term: {term!r}")


def _eval(f: Formula, model: CellModel, renv: dict, nenv: dict) -> bool:
    if isinstance(f, NameEq):
        return _name_value(f.left, nenv) == _name_value(f.right, nenv)
    if isinstance(f, Rel):
        return _atom_holds(
            f.relation,
            _region_value(f.left, model, renv, nenv),
            _region_value(f.right, model, renv, nenv),
        )
    if isinstance(f, Not):
        return not _eval(f.inner, model, renv, nenv)
    if isinstance(f, And):
        return all(_eval(p, model, renv, nenv) for p in f.parts)
    if isinstance(f, Or):
        return any(_eval(p, model, renv, nenv) for p in f.parts)
    if isinstance(f, Implies):
        return (not _eval(f.antecedent, model, renv, nenv)) or _eval(
            f.consequent, model, renv, nenv
        )
    if isinstance(f, ExistsRegion):
        for value in model.all_disc_regions():
            renv2 = dict(renv)
            renv2[f.variable] = value
            if _eval(f.body, model, renv2, nenv):
                return True
        return False
    if isinstance(f, ForAllRegion):
        for value in model.all_disc_regions():
            renv2 = dict(renv)
            renv2[f.variable] = value
            if not _eval(f.body, model, renv2, nenv):
                return False
        return True
    if isinstance(f, ExistsName):
        for name in model.instance.names():
            nenv2 = dict(nenv)
            nenv2[f.variable] = name
            if _eval(f.body, model, renv, nenv2):
                return True
        return False
    if isinstance(f, ForAllName):
        for name in model.instance.names():
            nenv2 = dict(nenv)
            nenv2[f.variable] = name
            if not _eval(f.body, model, renv, nenv2):
                return False
        return True
    raise QueryError(f"cannot evaluate {type(f).__name__}")
