"""Defining sentences and the normal form for topological queries
(Proposition 5.1, Theorems 5.2, 5.4, 5.6).

``build_phi(T)`` constructs the sentence φ_I of Proposition 5.1 from an
invariant: a region-quantified first-order sentence over the
4-intersection vocabulary that defines the H-equivalence class of the
instances with invariant ``T``.  The sentence follows the proof's
structure —

* a name part fixing ``names(I)``,
* one existential region variable per cell of the invariant,
* pairwise disjointness of the cell witnesses,
* label constraints tying each witness to each named region
  (``overlap`` for boundary, ``subset`` for interior, ``disjoint`` for
  exterior),
* an exterior-face marker, incidence gadgets for E, and orientation
  gadgets for O.

The incidence and orientation gadgets are *schematic*: they have the
shape the proof prescribes (auxiliary quantified regions connected to
the participating cell witnesses) but their full geometric content is
carried by the canonical construction rather than spelled out as nested
path formulas — the paper's own evaluation strategy for these sentences
(proof of Theorem 5.6) is to *reverse-engineer* the invariant from the
sentence and decide by invariant isomorphism, which is exactly what
``phi_holds`` implements.  ``reverse_engineer`` inverts ``build_phi``;
``normal_form`` is the polynomial-time mapping ``f(I) = φ_{T_I}`` of
Theorem 5.6.
"""

from __future__ import annotations

from typing import Callable

from ..errors import QueryError
from ..invariant import (
    TopologicalInvariant,
    are_isomorphic,
    invariant,
)
from ..regions import SpatialInstance
from .ast import (
    And,
    ExistsName,
    ExistsRegion,
    Ext,
    ForAllName,
    Formula,
    NameConst,
    NameEq,
    NameVar,
    Not,
    Or,
    RegionVar,
    Rel,
)

__all__ = [
    "build_phi",
    "reverse_engineer",
    "phi_holds",
    "normal_form",
    "RecursiveTopologicalProperty",
]

_LABEL_RELATION = {"b": "overlap", "o": "subset", "e": "disjoint"}
_RELATION_LABEL = {v: k for k, v in _LABEL_RELATION.items()}


def build_phi(t: TopologicalInvariant) -> Formula:
    """The defining sentence φ of the H-equivalence class of ``T``."""
    cells = sorted(t.all_cells())
    var_of = {c: f"r_{c}" for c in cells}

    conjuncts: list[Formula] = []

    # Pairwise disjointness of the cell witnesses.
    for i, c1 in enumerate(cells):
        for c2 in cells[i + 1:]:
            conjuncts.append(
                Rel("disjoint", RegionVar(var_of[c1]), RegionVar(var_of[c2]))
            )

    # Label constraints.
    for c in cells:
        for name, sign in zip(t.names, t.labels[c]):
            conjuncts.append(
                Rel(
                    _LABEL_RELATION[sign],
                    RegionVar(var_of[c]),
                    Ext(NameConst(name)),
                )
            )

    # Exterior face marker: some region covering every named region does
    # not connect to the exterior witness.
    ext_parts: list[Formula] = [
        Rel("subset", Ext(NameConst(n)), RegionVar("w_ext"))
        for n in t.names
    ]
    ext_parts.append(
        Not(Rel("connect", RegionVar("w_ext"), RegionVar(var_of[t.exterior_face])))
    )
    conjuncts.append(ExistsRegion("w_ext", And(*ext_parts)))

    # Incidence gadgets: a connector region for each E pair.
    for a, b in sorted(t.incidences):
        w = f"w_inc_{a}_{b}"
        conjuncts.append(
            ExistsRegion(
                w,
                And(
                    Rel("connect", RegionVar(var_of[a]), RegionVar(w)),
                    Rel("connect", RegionVar(var_of[b]), RegionVar(w)),
                ),
            )
        )

    # Endpoint gadgets (edges to their endpoint vertices) are part of the
    # incidences; loops need their multiplicity marked: an edge with a
    # single endpoint entry is flagged by an equal-witness gadget.
    for e in sorted(t.edges):
        eps = t.endpoints.get(e, ())
        if len(eps) == 1:
            w = f"w_loop_{e}"
            conjuncts.append(
                ExistsRegion(
                    w,
                    Rel("equal", RegionVar(w), RegionVar(var_of[e])),
                )
            )

    # Orientation gadgets: CW tuples as And-shaped connectors, CCW as
    # Or-shaped (schematic; see module docstring).
    for sense, v, e1, e2 in sorted(t.orientation):
        w = f"w_{sense}_{v}_{e1}_{e2}"
        body = And(
            Rel("connect", RegionVar(var_of[v]), RegionVar(w)),
            Rel("connect", RegionVar(var_of[e1]), RegionVar(w)),
            Rel("connect", RegionVar(var_of[e2]), RegionVar(w)),
        )
        conjuncts.append(
            ExistsRegion(w, body if sense == "cw" else Or(body))
        )

    # Existential closure over the cell witnesses.
    psi: Formula = And(*conjuncts)
    for c in reversed(cells):
        psi = ExistsRegion(var_of[c], psi)

    # Name part: the instance has exactly the names of T.
    name_atoms = [
        NameEq(NameVar(f"a{i}"), NameConst(n))
        for i, n in enumerate(t.names)
    ]
    closure = ForAllName(
        "a",
        Or(*[NameEq(NameVar("a"), NameConst(n)) for n in t.names]),
    )
    phi: Formula = And(*name_atoms, closure, psi)
    for i in reversed(range(len(t.names))):
        phi = ExistsName(f"a{i}", phi)
    return phi


def reverse_engineer(phi: Formula) -> TopologicalInvariant:
    """Recover the invariant from a sentence built by :func:`build_phi`.

    This is the reverse engineering step in the proof of Theorem 5.6.
    Raises :class:`~repro.errors.QueryError` when the sentence does not
    have the canonical shape.
    """
    # Strip the name quantifiers.
    body = phi
    while isinstance(body, ExistsName):
        body = body.body
    if not isinstance(body, And):
        raise QueryError("not a canonical defining sentence")
    names: list[str] = []
    psi = None
    for part in body.parts:
        if isinstance(part, NameEq) and isinstance(part.right, NameConst):
            names.append(part.right.value)
        elif isinstance(part, ExistsRegion):
            psi = part
        elif isinstance(part, ForAllName):
            continue
        else:
            raise QueryError("unexpected component in defining sentence")
    if psi is None:
        raise QueryError("defining sentence has no region part")
    names_t = tuple(sorted(names))

    # Collect the cell witnesses.
    cells: list[str] = []
    inner: Formula = psi
    while isinstance(inner, ExistsRegion) and inner.variable.startswith("r_"):
        cells.append(inner.variable[2:])
        inner = inner.body
    if not isinstance(inner, And):
        raise QueryError("malformed region part")

    labels: dict[str, dict[str, str]] = {c: {} for c in cells}
    incidences: set[tuple[str, str]] = set()
    orientation: set[tuple[str, str, str, str]] = set()
    loops: set[str] = set()
    exterior: str | None = None

    for part in inner.parts:
        if isinstance(part, Rel) and isinstance(part.right, Ext):
            cell = part.left.name[2:]
            name = part.right.name.value
            labels[cell][name] = _RELATION_LABEL[part.relation]
        elif isinstance(part, Rel):
            continue  # pairwise disjointness
        elif isinstance(part, ExistsRegion):
            w = part.variable
            if w == "w_ext":
                last = part.body.parts[-1]
                exterior = last.inner.right.name[2:]
            elif w.startswith("w_inc_"):
                a, b = w[len("w_inc_"):].split("_", 1)
                incidences.add((a, b))
            elif w.startswith("w_loop_"):
                loops.add(w[len("w_loop_"):])
            elif w.startswith(("w_cw_", "w_ccw_")):
                sense, rest = w[2:].split("_", 1)
                v, e1, e2 = rest.split("_", 2)
                orientation.add((sense, v, e1, e2))
            else:
                raise QueryError(f"unknown gadget variable {w!r}")
        else:
            raise QueryError("unexpected conjunct in region part")
    if exterior is None:
        raise QueryError("defining sentence lacks an exterior marker")

    # Reconstruct sorts: faces have no boundary sign; among the rest,
    # vertices are cells nothing is incident to *and* that are incident
    # to at least one non-face (an edge) — free-loop edges are also on
    # the right of nothing but are incident only to faces.
    cell_set = set(cells)
    right = {b for (_a, b) in incidences}
    faces = {c for c in cell_set if "b" not in labels[c].values()}
    non_face_partner = {
        a for (a, b) in incidences if b not in faces
    }
    vertices = {
        c
        for c in cell_set - faces
        if c not in right and c in non_face_partner
    }
    edges = cell_set - faces - vertices

    endpoints: dict[str, tuple[str, ...]] = {}
    for e in edges:
        eps = sorted(v for (v, x) in incidences if x == e and v in vertices)
        if e in loops and len(eps) == 1:
            endpoints[e] = (eps[0],)
        else:
            endpoints[e] = tuple(eps)

    return TopologicalInvariant(
        names=names_t,
        vertices=frozenset(vertices),
        edges=frozenset(edges),
        faces=frozenset(faces),
        exterior_face=exterior,
        labels={
            c: tuple(labels[c][n] for n in names_t) for c in cell_set
        },
        endpoints=endpoints,
        incidences=frozenset(incidences),
        orientation=frozenset(orientation),
    )


def phi_holds(
    phi: Formula, instance: SpatialInstance, pipeline=None
) -> bool:
    """Does the instance satisfy the defining sentence?

    By Theorem 5.2, ``I ⊨ φ_T`` iff ``T_I`` is isomorphic to ``T`` — and
    that is how the paper evaluates these sentences (Theorem 5.6), so we
    decide exactly that.  Passing an
    :class:`~repro.pipeline.InvariantPipeline` routes the invariant
    computation through its cache and backend.
    """
    t_i = (
        invariant(instance) if pipeline is None else pipeline.compute(instance)
    )
    return are_isomorphic(reverse_engineer(phi), t_i)


def normal_form(instance: SpatialInstance, pipeline=None) -> Formula:
    """Theorem 5.6's polynomial-time map ``f(I) = φ_{T_I}``.

    ``I ⊨ f(I)`` always holds, and for a recursive topological property
    τ, ``I ⊨ τ  iff  f(I) ∈ F_τ`` where ``F_τ`` is the recursive set of
    sentences accepted by :class:`RecursiveTopologicalProperty`.
    An :class:`~repro.pipeline.InvariantPipeline` may be passed as for
    :func:`phi_holds`.
    """
    t_i = (
        invariant(instance) if pipeline is None else pipeline.compute(instance)
    )
    return build_phi(t_i)


class RecursiveTopologicalProperty:
    """A recursive topological property τ and its sentence set ``F_τ``.

    The property is given as a computable predicate on invariants
    (topological properties factor through the invariant by Theorem 3.4).
    ``contains(phi)`` decides membership of a defining sentence in
    ``F_τ``: reverse-engineer the invariant and apply the predicate —
    the membership test of Theorem 5.6.
    """

    def __init__(
        self, name: str, predicate: Callable[[TopologicalInvariant], bool]
    ):
        self.name = name
        self.predicate = predicate

    def holds_on(self, instance: SpatialInstance) -> bool:
        return self.predicate(invariant(instance))

    def contains(self, phi: Formula) -> bool:
        """Membership of a sentence in ``F_τ``."""
        try:
            t = reverse_engineer(phi)
        except QueryError:
            return False
        return self.predicate(t)
