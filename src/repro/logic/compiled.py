"""Compiled bitset query engine for the cell and point logics.

The reference evaluators (:mod:`repro.logic.cell_eval`,
:mod:`repro.logic.pointlogic`) interpret the formula AST directly:
region values are ``frozenset[str]`` of cell ids, every atom
re-intersects those sets, every quantifier re-enumerates its domain,
and every subformula is re-evaluated for every candidate tuple.  This
module compiles both logics down to integer machinery:

* **bitmask cell models** — the cells of a (refined) complex are
  numbered once and every region value becomes two Python ints
  (interior mask, closure mask).  The 4-intersection atoms reduce to
  mask AND/compare, the disc test to mask BFS, and candidate sets of
  the enumeration to hashable ints;
* **one enumeration per instance** — the disc-region universe is a
  pure function of ``(instance geometry, refinement, max_faces)``, so
  it is content-addressed through the pipeline's
  :class:`~repro.pipeline.cache.InvariantCache` machinery and computed
  once no matter how many queries run against the instance;
* **formula compilation** — each AST node becomes a Python closure;
  quantifier nodes carry a per-node memo table keyed on the bindings of
  their *free* variables (sound because evaluation is a pure function
  of the model and those bindings — see DESIGN.md), and conjunctive
  bodies are partitioned at compile time into quantifier-free candidate
  filters and the quantified remainder, extending the
  ``hoist_conjuncts`` idea of the point logic to candidate pruning;
* **slab tables for the point logics** — on rectilinear instances the
  region-membership atoms of FO(R, <, Region') and FO(P, <x, <y,
  Region') are constant on each cell of the grid spanned by the
  instance's breakpoints, so ``classify`` calls collapse to an
  integer-coded table lookup.

Answers are bit-identical to the reference evaluators (asserted by the
equivalence suite and by ``benchmarks/bench_querylogic.py`` on every
figure query); the reference paths stay available through the
``engine="reference"`` switches.

``query.*`` counters (regions enumerated, universe cache hits, memo
hits/misses, atoms evaluated, candidates pruned) are exposed through
:mod:`repro.instrument` and therefore show up in
:class:`~repro.pipeline.PipelineStats` summaries.
"""

from __future__ import annotations

import json
from bisect import bisect_left, bisect_right
from fractions import Fraction
from typing import Callable, Mapping, Sequence

import numpy as np

from ..arrangement.soa import mask_from_bool
from ..errors import QueryError
from ..geometry import Location, Point
from ..instrument import Deadline, add_counter_source, stage
from ..regions import Rect, RectUnion, SpatialInstance
from . import pointlogic as _pl
from .ast import (
    And,
    ExistsName,
    ExistsRegion,
    Ext,
    ForAllName,
    ForAllRegion,
    Formula,
    Implies,
    NameConst,
    NameEq,
    NameTerm,
    NameVar,
    Not,
    Or,
    RegionTerm,
    RegionVar,
    Rel,
    flatten_and,
)
from .cell_eval import _MATRIX_OF, grid_refined_complex
from .rect_eval import _atom_holds, breakpoints_of, instance_values

__all__ = [
    "QueryCounters",
    "counters",
    "CompiledRegion",
    "CompiledUniverse",
    "CompiledCellModel",
    "compiled_universe",
    "universe_cache",
    "clear_universe_cache",
    "evaluate_cells_compiled",
    "evaluate_point_compiled",
    "evaluate_real_compiled",
    "evaluate_rect_compiled",
]


# -- counters ----------------------------------------------------------------


class QueryCounters:
    """Monotone counters for the compiled query engine.

    ``regions_enumerated``
        Disc regions admitted into a universe (cold enumerations only).
    ``universe_hits`` / ``universe_misses``
        Content-addressed universe cache lookups.
    ``memo_hits`` / ``memo_misses``
        Per-subformula memo table lookups at quantifier nodes.
    ``atoms_evaluated``
        4-intersection / order / membership atoms actually computed.
    ``candidates_pruned``
        Quantifier candidates rejected by compile-time filters before
        the quantified remainder of the body was entered.
    """

    __slots__ = (
        "regions_enumerated",
        "universe_hits",
        "universe_misses",
        "memo_hits",
        "memo_misses",
        "atoms_evaluated",
        "candidates_pruned",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def snapshot(self) -> dict[str, int]:
        """Current values under ``query.``-prefixed names."""
        return {f"query.{name}": getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(
            f"{name}={getattr(self, name)}" for name in self.__slots__
        )
        return f"QueryCounters({inner})"


counters = QueryCounters()


# -- compiled region values and universes ------------------------------------


class CompiledRegion:
    """A cell region as two bitmasks plus a hashable memo identity."""

    __slots__ = ("interior", "closure", "boundary", "key")

    def __init__(self, interior: int, closure: int, key: object):
        self.interior = interior
        self.closure = closure
        self.boundary = closure & ~interior
        self.key = key

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CompiledRegion(key={self.key!r})"


class CompiledUniverse:
    """Everything a compiled query needs: the numbered cells, the disc
    region universe, and the named regions — all as masks."""

    __slots__ = ("cell_ids", "names", "regions", "named", "candidates_seen")

    def __init__(
        self,
        cell_ids: tuple[str, ...],
        names: tuple[str, ...],
        regions: list[CompiledRegion],
        named: dict[str, CompiledRegion],
        candidates_seen: int,
    ):
        self.cell_ids = cell_ids
        self.names = names
        self.regions = regions
        self.named = named
        self.candidates_seen = candidates_seen


def _encode_universe(u: CompiledUniverse) -> str:
    return json.dumps(
        {
            "kind": "disc-region-universe",
            "cell_ids": list(u.cell_ids),
            "names": list(u.names),
            "regions": [[hex(r.interior), hex(r.closure)] for r in u.regions],
            "named": {
                n: [hex(r.interior), hex(r.closure)]
                for n, r in u.named.items()
            },
            "candidates_seen": u.candidates_seen,
        }
    )


def _decode_universe(text: str) -> CompiledUniverse:
    data = json.loads(text)
    if data.get("kind") != "disc-region-universe":
        raise ValueError("not a disc-region universe payload")
    regions = [
        CompiledRegion(int(i, 16), int(c, 16), idx)
        for idx, (i, c) in enumerate(data["regions"])
    ]
    named = {
        n: CompiledRegion(int(i, 16), int(c, 16), ("ext", n))
        for n, (i, c) in data["named"].items()
    }
    return CompiledUniverse(
        tuple(data["cell_ids"]),
        tuple(data["names"]),
        regions,
        named,
        int(data["candidates_seen"]),
    )


class CompiledCellModel:
    """A cell complex compiled to integer-indexed, bitmask form.

    Cells are numbered once in sorted-id order; interiors, closures,
    boundaries, edge–face incidence, and vertex stars are Python ints
    with bit *i* standing for cell ``cell_ids[i]``.  The disc test and
    the connected-face-set enumeration mirror the reference
    :class:`~repro.logic.cell_eval.CellModel` step for step (same
    candidate order, same budget accounting), so answers and
    budget errors agree bit for bit.
    """

    def __init__(
        self,
        complex,
        max_faces: int | None,
        max_regions: int,
        deadline: Deadline | None = None,
    ):
        self.complex = complex
        self.max_faces = max_faces
        self.max_regions = max_regions
        self.deadline = deadline
        arrays = getattr(complex, "arrays", None)
        if arrays is not None:
            self._init_from_arrays(arrays)
        else:
            self._init_from_cells(complex)

    def _init_from_arrays(self, arrays) -> None:
        """Build the bitset machinery straight from the SoA arrays.

        ``arrays.cell_ids`` is already the sorted-id numbering this
        model uses (bit *i* == ``cell_ids[i]``), so the label, closure,
        and star masks come out of grouped array scans and
        ``np.packbits`` instead of per-cell dict lookups.  The resulting
        masks are identical to :meth:`_init_from_cells` on the view
        dicts — the compiled-vs-reference equivalence suite checks the
        answers, and the construction mirrors it relation for relation.
        """
        self.cell_ids: tuple[str, ...] = arrays.cell_ids
        self._index = {cid: i for i, cid in enumerate(arrays.cell_ids)}
        n = arrays.n_cells
        self.all_cells_mask = (1 << n) - 1

        # Faces in sorted-id order: the enumeration's anchor order
        # (ascending global index == ascending id among faces).
        self.face_indices = np.sort(arrays.face_gidx).tolist()
        self.face_rank = {fi: r for r, fi in enumerate(self.face_indices)}

        inc = arrays.incidence
        dims = arrays.dims.tolist()

        # Group incidence rows by the upper cell to get each face's
        # down-set as one slice, packed into a bitset per face.
        by_upper = np.argsort(inc[:, 1], kind="stable")
        upper_sorted = inc[by_upper, 1]
        lower_sorted = inc[by_upper, 0]
        face_arr = np.asarray(self.face_indices, dtype=inc.dtype)
        flags = np.zeros(n, dtype=bool)
        down_of_face: dict[int, int] = {}
        for fi, s, e in zip(
            self.face_indices,
            np.searchsorted(upper_sorted, face_arr, side="left").tolist(),
            np.searchsorted(upper_sorted, face_arr, side="right").tolist(),
        ):
            rows = lower_sorted[s:e]
            flags[rows] = True
            down_of_face[fi] = mask_from_bool(flags)
            flags[rows] = False
        # Face closure: the face bit plus everything beneath it.
        self.closure_of_face = {
            fi: (1 << fi) | mask for fi, mask in down_of_face.items()
        }

        neighbors: list[list[int]] = [[] for _ in range(n)]
        for ia, ib in inc.tolist():
            neighbors[ia].append(ib)
            neighbors[ib].append(ia)
        self.cell_neighbors = neighbors

        # Group rows by the lower cell: each edge's faces and each
        # vertex's star come out as one slice.
        by_lower = np.argsort(inc[:, 0], kind="stable")
        low_sorted = inc[by_lower, 0]
        up_sorted = inc[by_lower, 1]

        # Edge -> mask of its (one or two) incident faces.
        self.edge_entries: list[tuple[int, int]] = []
        face_adj: dict[int, list[int]] = {fi: [] for fi in self.face_indices}
        edge_order = np.sort(arrays.edge_gidx)
        for ie, s, e in zip(
            edge_order.tolist(),
            np.searchsorted(low_sorted, edge_order, side="left").tolist(),
            np.searchsorted(low_sorted, edge_order, side="right").tolist(),
        ):
            fmask = 0
            fs = []
            for ib in up_sorted[s:e].tolist():
                if dims[ib] == 2:
                    fmask |= 1 << ib
                    fs.append(ib)
            if fmask:
                self.edge_entries.append((1 << ie, fmask))
            if len(set(fs)) == 2:
                f1, f2 = sorted(set(fs))
                face_adj[f1].append(f2)
                face_adj[f2].append(f1)
        self.face_adj = face_adj

        # Vertex -> mask of incident edges and faces (the star).
        self.vertex_entries: list[tuple[int, int]] = []
        vertex_order = np.sort(arrays.vertex_gidx)
        for iv, s, e in zip(
            vertex_order.tolist(),
            np.searchsorted(low_sorted, vertex_order, side="left").tolist(),
            np.searchsorted(low_sorted, vertex_order, side="right").tolist(),
        ):
            smask = 0
            for ib in up_sorted[s:e].tolist():
                smask |= 1 << ib
            if smask:
                self.vertex_entries.append((1 << iv, smask))

        self.ext_bit = 1 << arrays.exterior_face

    def _init_from_cells(self, cx) -> None:
        """Dict-walk construction for complexes without SoA arrays."""
        self.cell_ids: tuple[str, ...] = tuple(sorted(cx.cells))
        index = {cid: i for i, cid in enumerate(self.cell_ids)}
        self._index = index
        n = len(self.cell_ids)
        self.all_cells_mask = (1 << n) - 1

        # Faces in sorted-id order: the enumeration's anchor order.
        self.face_indices = [index[c.id] for c in cx.faces]
        self.face_indices.sort()
        face_set = set(self.face_indices)
        self.face_rank = {fi: r for r, fi in enumerate(self.face_indices)}

        up: dict[int, list[int]] = {}
        down_of_face: dict[int, int] = {fi: 0 for fi in self.face_indices}
        neighbors: list[list[int]] = [[] for _ in range(n)]
        for a, b in cx.incidences:
            ia, ib = index[a], index[b]
            up.setdefault(ia, []).append(ib)
            if ib in down_of_face:
                down_of_face[ib] |= 1 << ia
            neighbors[ia].append(ib)
            neighbors[ib].append(ia)
        self.cell_neighbors = neighbors
        # Face closure: the face bit plus everything beneath it.
        self.closure_of_face = {
            fi: (1 << fi) | mask for fi, mask in down_of_face.items()
        }

        # Edge -> mask of its (one or two) incident faces.
        self.edge_entries: list[tuple[int, int]] = []
        face_adj: dict[int, list[int]] = {fi: [] for fi in self.face_indices}
        for e in cx.edges:
            ie = index[e.id]
            fmask = 0
            fs = []
            for ib in up.get(ie, ()):
                if ib in face_set:
                    fmask |= 1 << ib
                    fs.append(ib)
            if fmask:
                self.edge_entries.append((1 << ie, fmask))
            if len(set(fs)) == 2:
                f1, f2 = sorted(set(fs))
                face_adj[f1].append(f2)
                face_adj[f2].append(f1)
        self.face_adj = face_adj

        # Vertex -> mask of incident edges and faces (the star).
        self.vertex_entries: list[tuple[int, int]] = []
        for v in cx.vertices:
            iv = index[v.id]
            smask = 0
            for ib in up.get(iv, ()):
                smask |= 1 << ib
            if smask:
                self.vertex_entries.append((1 << iv, smask))

        self.ext_bit = 1 << index[cx.exterior_face]

    # -- values --------------------------------------------------------------

    def label_masks(self, names: tuple[str, ...]) -> dict[str, CompiledRegion]:
        """``ext(name)`` for every instance name, as compiled regions."""
        cx = self.complex
        named: dict[str, CompiledRegion] = {}
        arrays = getattr(cx, "arrays", None)
        if arrays is not None:
            # One vectorized comparison per (name, sign) over the label
            # code matrix; the packed bitsets use the same bit == cell
            # index convention as self._index.
            for pos, name in enumerate(cx.names):
                interior = arrays.label_mask(pos, "o")
                boundary = arrays.label_mask(pos, "b")
                named[name] = CompiledRegion(
                    interior, interior | boundary, ("ext", name)
                )
            return named
        for pos, name in enumerate(cx.names):
            interior = 0
            boundary = 0
            for cid, cell in cx.cells.items():
                sign = cell.label[pos]
                if sign == "o":
                    interior |= 1 << self._index[cid]
                elif sign == "b":
                    boundary |= 1 << self._index[cid]
            named[name] = CompiledRegion(
                interior, interior | boundary, ("ext", name)
            )
        return named

    def region_from_faces(self, faces_mask: int) -> tuple[int, int]:
        """(interior, closure) masks of the open region generated by the
        faces — same inclusion rules as the reference model."""
        interior = faces_mask
        for ebit, fmask in self.edge_entries:
            if fmask & ~faces_mask == 0:
                interior |= ebit
        for vbit, smask in self.vertex_entries:
            if smask & ~interior == 0:
                interior |= vbit
        closure = interior
        m = faces_mask
        closure_of_face = self.closure_of_face
        while m:
            b = m & -m
            m ^= b
            closure |= closure_of_face[b.bit_length() - 1]
        return interior, closure

    def is_disc(self, faces_mask: int) -> bool:
        """Disc test: faces connected through shared interior edges, and
        the closed complement connected on the sphere (reaching the
        point at infinity through the exterior face)."""
        if faces_mask == 0:
            return False
        interior, _closure = self.region_from_faces(faces_mask)
        # Face connectivity through shared edges (a shared edge between
        # two included faces is always in the interior).
        start = faces_mask & -faces_mask
        seen = start
        stack = [start.bit_length() - 1]
        face_adj = self.face_adj
        while stack:
            fi = stack.pop()
            for g in face_adj[fi]:
                gb = 1 << g
                if faces_mask & gb and not seen & gb:
                    seen |= gb
                    stack.append(g)
        if seen != faces_mask:
            return False
        # Complement connectivity on the sphere.
        comp = self.all_cells_mask & ~interior
        if comp == 0:
            return True  # the whole plane
        if comp & self.ext_bit == 0:
            # The complement never reaches the point at infinity.
            return False
        start_bit = self.ext_bit
        seen_c = start_bit
        stack = [start_bit.bit_length() - 1]
        neighbors = self.cell_neighbors
        while stack:
            ci = stack.pop()
            for d in neighbors[ci]:
                db = 1 << d
                if comp & db and not seen_c & db:
                    seen_c |= db
                    stack.append(d)
        return seen_c == comp

    # -- quantifier range ----------------------------------------------------

    def enumerate_universe(self) -> tuple[list[CompiledRegion], int]:
        """Every disc cell region (as compiled regions) plus the number
        of connected face sets considered — the same canonical expansion
        and budget accounting as the reference enumeration."""
        results: list[CompiledRegion] = []
        seen_sets: set[int] = set()
        budget = self.max_regions
        deadline = self.deadline
        max_faces = self.max_faces
        face_rank = self.face_rank
        face_adj = self.face_adj
        # Check once up front so an already-expired deadline raises even
        # on universes too small to reach the 64-candidate poll below.
        if deadline is not None:
            deadline.check("universe_enumeration")
        for anchor_rank, anchor in enumerate(self.face_indices):
            stack = [1 << anchor]
            while stack:
                current = stack.pop()
                if current in seen_sets:
                    continue
                seen_sets.add(current)
                if len(seen_sets) > budget:
                    raise QueryError(
                        "cell-region enumeration exceeded "
                        f"{budget} candidates; lower the refinement, "
                        "set max_faces, or raise max_regions"
                    )
                # The time budget is polled at the same checkpoint as
                # the size budget: enumeration cannot be preempted, so
                # it cooperates.
                if deadline is not None and not len(seen_sets) % 64:
                    deadline.check("universe_enumeration")
                if self.is_disc(current):
                    interior, closure = self.region_from_faces(current)
                    results.append(
                        CompiledRegion(interior, closure, len(results))
                    )
                if max_faces is not None and current.bit_count() >= max_faces:
                    continue
                frontier: set[int] = set()
                m = current
                while m:
                    b = m & -m
                    m ^= b
                    for g in face_adj[b.bit_length() - 1]:
                        if (
                            not current & (1 << g)
                            and face_rank[g] >= anchor_rank
                        ):
                            frontier.add(g)
                for g in sorted(frontier):
                    stack.append(current | (1 << g))
        return results, len(seen_sets)


# -- the universe cache ------------------------------------------------------

_UNIVERSE_CACHE = None


def universe_cache():
    """The module-level content-addressed universe cache (an
    :class:`~repro.pipeline.cache.InvariantCache` with the disc-region
    universe codec), created lazily."""
    global _UNIVERSE_CACHE
    if _UNIVERSE_CACHE is None:
        from ..pipeline.cache import InvariantCache

        _UNIVERSE_CACHE = InvariantCache(
            maxsize=64, encode=_encode_universe, decode=_decode_universe
        )
    return _UNIVERSE_CACHE


def clear_universe_cache() -> None:
    """Drop every cached universe (tests and cold benchmarks)."""
    if _UNIVERSE_CACHE is not None:
        _UNIVERSE_CACHE.clear()


def _universe_key(
    instance: SpatialInstance, refinement: int, max_faces: int | None
) -> str:
    from ..invariant.canonical import instance_key

    return f"{instance_key(instance)}-r{refinement}-mf{max_faces}"


def compiled_universe(
    instance: SpatialInstance,
    refinement: int = 0,
    max_faces: int | None = None,
    max_regions: int = 200_000,
    complex=None,
    cache=None,
    timeout: float | None = None,
) -> CompiledUniverse:
    """The compiled disc-region universe of an instance.

    Content-addressed by ``(instance geometry, refinement, max_faces)``
    through the pipeline cache machinery: repeated queries against one
    instance skip planarization and enumeration entirely.  Passing an
    explicit *complex* bypasses the cache (its provenance is unknown).
    A cached universe still honours *max_regions*: enumeration size is
    stored with the universe and re-checked against the budget.

    *timeout* bounds a cold enumeration in seconds (cooperatively, via
    :class:`~repro.instrument.Deadline`): past it the enumeration raises
    :class:`repro.errors.TimeoutError`.  Cache hits never time out —
    they do no enumeration.
    """
    if complex is not None:
        model = CompiledCellModel(
            complex, max_faces, max_regions, deadline=_deadline(timeout)
        )
        return _build_universe(model, instance)
    cache = cache if cache is not None else universe_cache()
    key = _universe_key(instance, refinement, max_faces)
    hit = cache.get(key)
    if hit is not None:
        counters.universe_hits += 1
        if hit.candidates_seen > max_regions:
            raise QueryError(
                "cell-region enumeration exceeded "
                f"{max_regions} candidates; lower the refinement, "
                "set max_faces, or raise max_regions"
            )
        return hit
    counters.universe_misses += 1
    cx = grid_refined_complex(instance, refinement)
    model = CompiledCellModel(
        cx, max_faces, max_regions, deadline=_deadline(timeout)
    )
    universe = _build_universe(model, instance)
    cache.put(key, universe)
    return universe


def _deadline(timeout: float | None) -> Deadline | None:
    return Deadline(timeout) if timeout is not None else None


def _build_universe(
    model: CompiledCellModel, instance: SpatialInstance
) -> CompiledUniverse:
    names = tuple(instance.names())
    with stage("query.enumerate_universe", faces=len(model.face_indices)):
        regions, candidates_seen = model.enumerate_universe()
    counters.regions_enumerated += len(regions)
    return CompiledUniverse(
        model.cell_ids,
        names,
        regions,
        model.label_masks(names),
        candidates_seen,
    )


# -- cell formula compilation ------------------------------------------------

_MISSING = object()

_CellFn = Callable[[dict, dict], bool]


class _CellCompiler:
    """Compiles an FO(Region, Region') formula into nested closures over
    a compiled universe.  Closures take ``(renv, nenv)`` — mutable
    binding environments for region and name variables."""

    def __init__(self, universe: CompiledUniverse):
        self.universe = universe

    # -- terms ---------------------------------------------------------------

    def _name_getter(self, t: NameTerm):
        if isinstance(t, NameConst):
            value = t.value
            return lambda renv, nenv: value
        if isinstance(t, NameVar):
            var = t.name

            def get(renv, nenv):
                try:
                    return nenv[var]
                except KeyError:
                    raise QueryError(
                        f"unbound name variable {var!r}"
                    ) from None

            return get
        raise QueryError(f"not a name term: {t!r}")

    def _region_getter(self, t: RegionTerm):
        if isinstance(t, RegionVar):
            var = t.name

            def get(renv, nenv):
                try:
                    return renv[var]
                except KeyError:
                    raise QueryError(
                        f"unbound region variable {var!r}"
                    ) from None

            return get
        if isinstance(t, Ext):
            name_of = self._name_getter(t.name)
            named = self.universe.named

            def get_ext(renv, nenv):
                name = name_of(renv, nenv)
                try:
                    return named[name]
                except KeyError:
                    raise QueryError(
                        f"unknown region name {name!r}"
                    ) from None

            return get_ext
        raise QueryError(f"not a region term: {t!r}")

    # -- formulas ------------------------------------------------------------

    def compile(self, f: Formula) -> _CellFn:
        c = counters
        if isinstance(f, NameEq):
            left = self._name_getter(f.left)
            right = self._name_getter(f.right)
            return lambda renv, nenv: left(renv, nenv) == right(renv, nenv)
        if isinstance(f, Rel):
            left = self._region_getter(f.left)
            right = self._region_getter(f.right)
            rel = f.relation
            if rel == "connect":

                def atom(renv, nenv):
                    c.atoms_evaluated += 1
                    return (
                        left(renv, nenv).closure & right(renv, nenv).closure
                    ) != 0

                return atom
            if rel == "subset":

                def atom(renv, nenv):
                    c.atoms_evaluated += 1
                    return (
                        left(renv, nenv).interior
                        & ~right(renv, nenv).interior
                    ) == 0

                return atom
            if rel == "equal":

                def atom(renv, nenv):
                    c.atoms_evaluated += 1
                    return (
                        left(renv, nenv).interior
                        == right(renv, nenv).interior
                    )

                return atom
            m0, m1, m2, m3 = _MATRIX_OF[rel]

            def atom(renv, nenv):
                c.atoms_evaluated += 1
                p = left(renv, nenv)
                q = right(renv, nenv)
                return (
                    ((p.interior & q.interior) != 0) == m0
                    and ((p.interior & q.boundary) != 0) == m1
                    and ((p.boundary & q.interior) != 0) == m2
                    and ((p.boundary & q.boundary) != 0) == m3
                )

            return atom
        if isinstance(f, Not):
            inner = self.compile(f.inner)
            return lambda renv, nenv: not inner(renv, nenv)
        if isinstance(f, And):
            parts = [self.compile(p) for p in f.parts]
            return lambda renv, nenv: all(p(renv, nenv) for p in parts)
        if isinstance(f, Or):
            parts = [self.compile(p) for p in f.parts]
            return lambda renv, nenv: any(p(renv, nenv) for p in parts)
        if isinstance(f, Implies):
            ante = self.compile(f.antecedent)
            cons = self.compile(f.consequent)
            return lambda renv, nenv: (not ante(renv, nenv)) or cons(
                renv, nenv
            )
        if isinstance(f, (ExistsRegion, ForAllRegion)):
            return self._compile_region_quantifier(f)
        if isinstance(f, (ExistsName, ForAllName)):
            return self._compile_name_quantifier(f)
        raise QueryError(f"cannot compile {type(f).__name__}")

    def _partition_body(self, body: Formula):
        """Split a conjunctive body into quantifier-free candidate
        filters and the quantified remainder (compiled; None if the
        body has no quantified part).  Returns (None, compiled_body)
        when the body is not a conjunction."""
        parts = flatten_and(body)
        if parts is None:
            return None, self.compile(body)
        cheap = [p for p in parts if p.quantifier_depth() == 0]
        deep = [p for p in parts if p.quantifier_depth() > 0]
        if not cheap or not deep:
            return None, self.compile(body)
        filters = [self.compile(p) for p in cheap]
        rest = self.compile(deep[0] if len(deep) == 1 else And(*deep))
        return filters, rest

    def _memoized(self, f: Formula, raw: _CellFn) -> _CellFn:
        free_r = sorted(f.free_region_vars())
        free_n = sorted(f.free_name_vars())
        memo: dict = {}
        c = counters

        def fn(renv, nenv):
            key = (
                tuple(renv[x].key for x in free_r),
                tuple(nenv[x] for x in free_n),
            )
            hit = memo.get(key)
            if hit is not None:
                c.memo_hits += 1
                return hit
            c.memo_misses += 1
            result = raw(renv, nenv)
            memo[key] = result
            return result

        return fn

    def _compile_region_quantifier(self, f) -> _CellFn:
        want = isinstance(f, ExistsRegion)
        var = f.variable
        regions = self.universe.regions
        c = counters
        body = f.body
        span_name = (
            f"query.exists_region.{var}" if want
            else f"query.forall_region.{var}"
        )

        guard = None  # ForAll-Implies: skip candidates failing the guard
        filters = None  # Exists-And: quantifier-free candidate filters
        if want:
            filters, rest = self._partition_body(body)
        elif isinstance(body, Implies):
            guard = self.compile(body.antecedent)
            rest = self.compile(body.consequent)
        else:
            rest = self.compile(body)

        def raw(renv, nenv):
            # A span per (non-memoized) evaluation of this quantifier
            # node: a no-op truthiness check when tracing is off.
            with stage(span_name, candidates=len(regions)):
                prev = renv.get(var, _MISSING)
                try:
                    for value in regions:
                        renv[var] = value
                        if filters is not None and not all(
                            g(renv, nenv) for g in filters
                        ):
                            c.candidates_pruned += 1
                            continue
                        if guard is not None and not guard(renv, nenv):
                            c.candidates_pruned += 1
                            continue
                        if rest(renv, nenv) == want:
                            return want
                    return not want
                finally:
                    if prev is _MISSING:
                        renv.pop(var, None)
                    else:
                        renv[var] = prev

        return self._memoized(f, raw)

    def _compile_name_quantifier(self, f) -> _CellFn:
        want = isinstance(f, ExistsName)
        var = f.variable
        names = self.universe.names
        body = self.compile(f.body)
        span_name = (
            f"query.exists_name.{var}" if want
            else f"query.forall_name.{var}"
        )

        def raw(renv, nenv):
            with stage(span_name, candidates=len(names)):
                prev = nenv.get(var, _MISSING)
                try:
                    for name in names:
                        nenv[var] = name
                        if body(renv, nenv) == want:
                            return want
                    return not want
                finally:
                    if prev is _MISSING:
                        nenv.pop(var, None)
                    else:
                        nenv[var] = prev

        return self._memoized(f, raw)


def evaluate_cells_compiled(
    formula: Formula,
    instance: SpatialInstance,
    refinement: int = 0,
    max_faces: int | None = None,
    max_regions: int = 200_000,
    parallel: str = "serial",
    workers: int | None = None,
    cache=None,
    timeout: float | None = None,
) -> bool:
    """Evaluate a sentence under cell semantics with the compiled engine.

    Answers are identical to
    :func:`~repro.logic.cell_eval.evaluate_cells_reference`.  *parallel*
    selects the outermost-quantifier evaluation backend (``serial``,
    ``threads``, or ``processes`` — the pipeline's backend names); the
    non-serial backends chunk the outermost region quantifier's
    candidate range over a worker pool.  *timeout* bounds a cold
    universe enumeration (see :func:`compiled_universe`).
    """
    if not formula.is_sentence():
        raise QueryError("can only evaluate sentences")
    from ..pipeline.engine import BACKENDS

    if parallel not in BACKENDS:
        raise QueryError(
            f"unknown parallel backend {parallel!r}; expected one of "
            f"{BACKENDS}"
        )
    with stage(
        "query.evaluate_cells", refinement=refinement, parallel=parallel
    ):
        universe = compiled_universe(
            instance, refinement, max_faces, max_regions, cache=cache,
            timeout=timeout,
        )
        if parallel != "serial" and isinstance(
            formula, (ExistsRegion, ForAllRegion)
        ):
            return _evaluate_parallel(
                formula,
                instance,
                universe,
                refinement,
                max_faces,
                max_regions,
                parallel,
                workers,
            )
        fn = _CellCompiler(universe).compile(formula)
        return fn({}, {})


# -- parallel outermost quantifier -------------------------------------------


def _chunk_ranges(n: int, chunks: int) -> list[tuple[int, int]]:
    size = max(1, -(-n // chunks))
    return [(lo, min(lo + size, n)) for lo in range(0, n, size)]


def _eval_chunk_processes(args) -> bool:
    """Process-pool worker: evaluate one slice of the outermost region
    quantifier's candidates (the universe is rebuilt — or fetched from
    the worker's own cache — inside the worker interpreter)."""
    (
        instance_json,
        formula,
        refinement,
        max_faces,
        max_regions,
        lo,
        hi,
    ) = args
    from ..io import instance_from_json

    instance = instance_from_json(instance_json)
    universe = compiled_universe(instance, refinement, max_faces, max_regions)
    want = isinstance(formula, ExistsRegion)
    body = _CellCompiler(universe).compile(formula.body)
    renv: dict = {}
    for value in universe.regions[lo:hi]:
        renv[formula.variable] = value
        if body(renv, {}) == want:
            return True
    return False


def _evaluate_parallel(
    formula,
    instance: SpatialInstance,
    universe: CompiledUniverse,
    refinement: int,
    max_faces: int | None,
    max_regions: int,
    parallel: str,
    workers: int | None,
) -> bool:
    import os
    from concurrent.futures import (
        FIRST_COMPLETED,
        ProcessPoolExecutor,
        ThreadPoolExecutor,
        wait,
    )

    want = isinstance(formula, ExistsRegion)
    n = len(universe.regions)
    if n == 0:
        return not want
    pool_size = workers or os.cpu_count() or 1
    ranges = _chunk_ranges(n, pool_size * 4)

    if parallel == "threads":
        body = _CellCompiler(universe).compile(formula.body)
        var = formula.variable
        regions = universe.regions

        def eval_chunk(bounds):
            lo, hi = bounds
            renv: dict = {}
            for value in regions[lo:hi]:
                renv[var] = value
                if body(renv, {}) == want:
                    return True
            return False

        executor = ThreadPoolExecutor(pool_size)
        futures = [executor.submit(eval_chunk, r) for r in ranges]
    else:
        from ..io import instance_to_json

        payload = instance_to_json(instance)
        executor = ProcessPoolExecutor(pool_size)
        futures = [
            executor.submit(
                _eval_chunk_processes,
                (
                    payload,
                    formula,
                    refinement,
                    max_faces,
                    max_regions,
                    lo,
                    hi,
                ),
            )
            for lo, hi in ranges
        ]

    try:
        pending = set(futures)
        decided = False
        while pending and not decided:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for fut in done:
                if fut.result():
                    decided = True
                    break
        return want if decided else not want
    finally:
        for fut in futures:
            fut.cancel()
        executor.shutdown(wait=False, cancel_futures=True)


# -- compiled point / real logics --------------------------------------------


class _PointTables:
    """Slab-indexed region membership for rectilinear instances.

    The instance's breakpoints split each axis into alternating exact
    values and open gaps; membership of a point in a region's interior
    is constant on each (x-class, y-class) cell of that grid, so each
    class is classified once (with exact geometry) and then served from
    a table.  Non-rectilinear instances fall back to direct
    classification — same answers, no table."""

    def __init__(self, instance: SpatialInstance):
        self.instance = instance
        self.rectilinear = all(
            isinstance(region, (Rect, RectUnion))
            for _name, region in instance.items()
        )
        self.base: list[Fraction] = instance_values(instance)
        self._table: dict = {}
        self._codes: dict = {}

    def _code(self, value: Fraction) -> int:
        # Candidate values recur across the whole search; caching the
        # code avoids repeated Fraction-comparison bisects.
        got = self._codes.get(value)
        if got is not None:
            return got
        base = self.base
        i = bisect_left(base, value)
        if i < len(base) and base[i] == value:
            code = 2 * i + 1  # odd: exactly the i-th breakpoint
        else:
            code = 2 * i  # even: the open gap below the i-th breakpoint
        self._codes[value] = code
        return code

    def in_interior(self, name: str, x: Fraction, y: Fraction) -> bool:
        if not self.rectilinear:
            return (
                self.instance.ext(name).classify(Point(x, y))
                is Location.INTERIOR
            )
        key = (name, self._code(x), self._code(y))
        hit = self._table.get(key)
        if hit is None:
            hit = (
                self.instance.ext(name).classify(Point(x, y))
                is Location.INTERIOR
            )
            self._table[key] = hit
        return hit


_PointFn = Callable[[dict, tuple], bool]


def _pf_quantifier_depth(f, cache: dict) -> int:
    got = cache.get(id(f))
    if got is not None:
        return got
    if isinstance(f, _pl.NotF):
        out = _pf_quantifier_depth(f.inner, cache)
    elif isinstance(f, (_pl.AndF, _pl.OrF)):
        out = max(_pf_quantifier_depth(p, cache) for p in f.parts)
    elif isinstance(f, _pl.ImpliesF):
        out = max(
            _pf_quantifier_depth(f.antecedent, cache),
            _pf_quantifier_depth(f.consequent, cache),
        )
    elif isinstance(f, _pl._QuantF):
        out = 1 + _pf_quantifier_depth(f.body, cache)
    else:
        out = 0
    cache[id(f)] = out
    return out


def _axis_range(
    values: list, env: dict, lo_keys: list, hi_keys: list
) -> tuple[int, int]:
    """The index range of candidates satisfying the extracted strict
    bounds (*values* is the sorted candidate value list; each key is an
    (outer-variable, coord-index) pair, coord None for real values)."""
    lo = None
    for nm, ci in lo_keys:
        v = env[nm] if ci is None else env[nm][ci]
        if lo is None or v > lo:
            lo = v
    hi = None
    for nm, ci in hi_keys:
        v = env[nm] if ci is None else env[nm][ci]
        if hi is None or v < hi:
            hi = v
    start = 0 if lo is None else bisect_right(values, lo)
    end = len(values) if hi is None else bisect_left(values, hi)
    return start, end


def _expanded_candidates(vals: tuple) -> list[tuple]:
    """The reference candidate list (:func:`pointlogic._candidates`,
    same values, same order) with each entry carrying its insertion
    position in *vals* and whether it is a new value — so extending the
    sorted vals tuple never needs a comparison, let alone a bisect."""
    if not vals:
        return [(Fraction(0), 0, True)]
    out = [(vals[0] - 1, 0, True)]
    n = len(vals)
    for i in range(n - 1):
        a = vals[i]
        out.append((a, i, False))
        out.append(((a + vals[i + 1]) / 2, i + 1, True))
    out.append((vals[-1], n - 1, False))
    out.append((vals[-1] + 1, n, True))
    return out


class _PointCompiler:
    """Compiles FO(R, <, Region') / FO(P, <x, <y, Region') formulas into
    closures ``(env, vals) -> bool`` over slab-indexed membership
    tables, with quantifier-node memoization and candidate pruning.

    On rectilinear instances the memo key is the *order type* of the
    configuration — the slab signature of ``vals`` against the instance
    breakpoints plus the positions of the free variables' coordinates in
    ``vals`` — rather than the exact values: evaluation is invariant
    under order isomorphisms fixing the breakpoints (the Section 5
    genericity argument), so order-isomorphic configurations share one
    memo entry.  This is what collapses the deep quantifier chains of
    the Prop. 5.7 / Thm. 5.8 translations.  Non-rectilinear instances
    fall back to exact-value keys."""

    def __init__(self, tables: _PointTables, budget: int):
        self.tables = tables
        self.budget = budget
        self._fv_cache: dict = {}
        self._qd_cache: dict = {}

    def _order_key(self, vals: tuple, coords: list) -> tuple:
        code = self.tables._code
        return (
            tuple(code(v) for v in vals),
            tuple(bisect_left(vals, c) for c in coords),
        )

    def _spend(self, n: int) -> None:
        self.budget -= n
        if self.budget < 0:
            raise QueryError("point/real quantifier search exceeded budget")

    def compile(self, f) -> _PointFn:
        c = counters
        tables = self.tables
        if isinstance(f, _pl.RLess):
            left, right = f.left.name, f.right.name
            return lambda env, vals: env[left] < env[right]
        if isinstance(f, _pl.RRegion):
            name, xv, yv = f.region, f.x.name, f.y.name

            def atom(env, vals):
                c.atoms_evaluated += 1
                return tables.in_interior(name, env[xv], env[yv])

            return atom
        if isinstance(f, _pl.PLessX):
            # Point values are (x, y) tuples inside the compiled
            # evaluator — cheaper to build and index than Point objects.
            left, right = f.left.name, f.right.name
            return lambda env, vals: env[left][0] < env[right][0]
        if isinstance(f, _pl.PLessY):
            left, right = f.left.name, f.right.name
            return lambda env, vals: env[left][1] < env[right][1]
        if isinstance(f, _pl.PRegion):
            name, pv = f.region, f.point.name

            def atom(env, vals):
                c.atoms_evaluated += 1
                p = env[pv]
                return tables.in_interior(name, p[0], p[1])

            return atom
        if isinstance(f, _pl.NotF):
            inner = self.compile(f.inner)
            return lambda env, vals: not inner(env, vals)
        if isinstance(f, _pl.AndF):
            parts = [self.compile(p) for p in f.parts]
            if len(parts) == 2:
                a0, a1 = parts
                return lambda env, vals: a0(env, vals) and a1(env, vals)
            if len(parts) == 3:
                a0, a1, a2 = parts
                return lambda env, vals: (
                    a0(env, vals) and a1(env, vals) and a2(env, vals)
                )
            return lambda env, vals: all(p(env, vals) for p in parts)
        if isinstance(f, _pl.OrF):
            parts = [self.compile(p) for p in f.parts]
            if len(parts) == 2:
                o0, o1 = parts
                return lambda env, vals: o0(env, vals) or o1(env, vals)
            return lambda env, vals: any(p(env, vals) for p in parts)
        if isinstance(f, _pl.ImpliesF):
            ante = self.compile(f.antecedent)
            cons = self.compile(f.consequent)
            return lambda env, vals: (not ante(env, vals)) or cons(env, vals)
        if isinstance(f, (_pl.RealExists, _pl.RealForAll)):
            return self._compile_quantifier(f, real=True)
        if isinstance(f, (_pl.PointExists, _pl.PointForAll)):
            return self._compile_quantifier(f, real=False)
        raise QueryError(f"cannot compile {type(f).__name__}")

    def _extract_bounds(self, parts: list, var: str, real: bool):
        """Pull order atoms that pin *var* against an outer variable out
        of the conjunct list: they become candidate-range bounds instead
        of per-candidate checks.  Returns (residual_parts, bounds) where
        bounds is four lists of (outer_name, coord_index) — strict lower
        and upper bounds for the x and y coordinate (real variables use
        the x slot only).  Skipping a candidate outside the bounds is
        sound: the extracted atom — a conjunct of the filter or of a
        universal implication's antecedent — is false there."""
        residual: list = []
        xlo: list = []
        xhi: list = []
        ylo: list = []
        yhi: list = []
        for p in parts:
            if real and isinstance(p, _pl.RLess):
                ln, rn = p.left.name, p.right.name
                if ln == var and rn != var:
                    xhi.append((rn, None))
                    continue
                if rn == var and ln != var:
                    xlo.append((ln, None))
                    continue
            elif not real and isinstance(p, (_pl.PLessX, _pl.PLessY)):
                ln, rn = p.left.name, p.right.name
                ci = 0 if isinstance(p, _pl.PLessX) else 1
                lo, hi = (xlo, xhi) if ci == 0 else (ylo, yhi)
                if ln == var and rn != var:
                    hi.append((rn, ci))
                    continue
                if rn == var and ln != var:
                    lo.append((ln, ci))
                    continue
            residual.append(p)
        return residual, (xlo, xhi, ylo, yhi)

    def _partition_body(self, f, want: bool, real: bool):
        """(filters, guard, rest, bounds): quantifier-free candidate
        filters for an existential conjunctive body, a vacuity guard for
        a universal implication body, extracted candidate-range bounds,
        and the compiled remainder."""
        body = f.body
        var = f.variable
        qd = self._qd_cache
        no_bounds = ([], [], [], [])
        if want:
            parts = _pl._flatten_and(body)
            if parts is not None:
                cheap = [p for p in parts if _pf_quantifier_depth(p, qd) == 0]
                deep = [p for p in parts if _pf_quantifier_depth(p, qd) > 0]
                if cheap and deep:
                    rest = self.compile(
                        deep[0] if len(deep) == 1 else _pl.AndF(*deep)
                    )
                    cheap, bounds = self._extract_bounds(cheap, var, real)
                    flt = (
                        self.compile(
                            cheap[0] if len(cheap) == 1 else _pl.AndF(*cheap)
                        )
                        if cheap
                        else None
                    )
                    return flt, None, rest, bounds
            return None, None, self.compile(body), no_bounds
        if isinstance(body, _pl.ImpliesF):
            ante = _pl._flatten_and(body.antecedent)
            if ante is None:
                ante = [body.antecedent]
            ante, bounds = self._extract_bounds(ante, var, real)
            guard = (
                self.compile(
                    ante[0] if len(ante) == 1 else _pl.AndF(*ante)
                )
                if ante
                else None
            )
            return None, guard, self.compile(body.consequent), bounds
        return None, None, self.compile(body), no_bounds

    def _compile_quantifier(self, f, real: bool) -> _PointFn:
        want = isinstance(f, (_pl.RealExists, _pl.PointExists))
        var = f.variable
        filters, guard, rest, bounds = self._partition_body(f, want, real)
        xlo_keys, xhi_keys, ylo_keys, yhi_keys = bounds
        has_bounds = bool(xlo_keys or xhi_keys or ylo_keys or yhi_keys)
        free = sorted(_pl._free_vars(f, self._fv_cache))
        rectilinear = self.tables.rectilinear
        memo: dict = {}
        c = counters

        def fn(env, vals):
            if rectilinear:
                coords: list = []
                for x in free:
                    v = env[x]
                    if isinstance(v, tuple):
                        coords.append(v[0])
                        coords.append(v[1])
                    else:
                        coords.append(v)
                key = self._order_key(vals, coords)
            else:
                key = (tuple(env[x] for x in free), vals)
            hit = memo.get(key)
            if hit is not None:
                c.memo_hits += 1
                return hit
            c.memo_misses += 1
            cands = _expanded_candidates(vals)
            self._spend(len(cands) if real else len(cands) ** 2)
            if has_bounds:
                values = [t[0] for t in cands]
                sx, ex = _axis_range(values, env, xlo_keys, xhi_keys)
                iter_x = cands[sx:ex]
                if real:
                    c.candidates_pruned += len(cands) - len(iter_x)
                else:
                    sy, ey = _axis_range(values, env, ylo_keys, yhi_keys)
                    iter_y = cands[sy:ey]
                    c.candidates_pruned += len(cands) ** 2 - len(
                        iter_x
                    ) * len(iter_y)
            else:
                iter_x = cands
                iter_y = cands
            prev = env.get(var, _MISSING)
            result = not want
            try:
                if real:
                    for v, pos, new in iter_x:
                        env[var] = v
                        vals2 = (
                            vals[:pos] + (v,) + vals[pos:] if new else vals
                        )
                        if filters is not None and not filters(env, vals2):
                            c.candidates_pruned += 1
                            continue
                        if guard is not None and not guard(env, vals2):
                            c.candidates_pruned += 1
                            continue
                        if rest(env, vals2) == want:
                            result = want
                            break
                else:
                    decided = False
                    for vx, px, newx in iter_x:
                        vals_x = (
                            vals[:px] + (vx,) + vals[px:] if newx else vals
                        )
                        for vy, py, newy in iter_y:
                            env[var] = (vx, vy)
                            if not newy or (newx and px == py):
                                vals2 = vals_x
                            else:
                                p2 = py + (1 if newx and px <= py else 0)
                                vals2 = (
                                    vals_x[:p2] + (vy,) + vals_x[p2:]
                                )
                            if filters is not None and not filters(
                                env, vals2
                            ):
                                c.candidates_pruned += 1
                                continue
                            if guard is not None and not guard(env, vals2):
                                c.candidates_pruned += 1
                                continue
                            if rest(env, vals2) == want:
                                result = want
                                decided = True
                                break
                        if decided:
                            break
            finally:
                if prev is _MISSING:
                    env.pop(var, None)
                else:
                    env[var] = prev
            memo[key] = result
            return result

        return fn


def _evaluate_pointlike(
    formula,
    instance: SpatialInstance,
    budget: int,
    env: Mapping | None,
    vals: Sequence[Fraction] | None,
) -> bool:
    tables = _PointTables(instance)
    compiler = _PointCompiler(tables, budget)
    fn = compiler.compile(_pl.hoist_conjuncts(formula))
    start_vals = (
        tuple(vals) if vals is not None else tuple(instance_values(instance))
    )
    # Point bindings are (x, y) tuples inside the compiled evaluator.
    start_env = {
        k: (v.x, v.y) if isinstance(v, Point) else v
        for k, v in (env or {}).items()
    }
    return fn(start_env, start_vals)


def evaluate_real_compiled(
    formula,
    instance: SpatialInstance,
    budget: int = 5_000_000,
    env: Mapping | None = None,
    vals: Sequence[Fraction] | None = None,
) -> bool:
    """Compiled evaluation of an FO(R, <, Region') sentence — same
    answers as :func:`~repro.logic.pointlogic.evaluate_real_reference`."""
    return _evaluate_pointlike(formula, instance, budget, env, vals)


def evaluate_point_compiled(
    formula,
    instance: SpatialInstance,
    budget: int = 5_000_000,
    env: Mapping | None = None,
    vals: Sequence[Fraction] | None = None,
) -> bool:
    """Compiled evaluation of an FO(P, <x, <y, Region') sentence — same
    answers as :func:`~repro.logic.pointlogic.evaluate_point_reference`."""
    return _evaluate_pointlike(formula, instance, budget, env, vals)


# -- rect logic --------------------------------------------------------------


def _rect_rect_bits(a: tuple, b: tuple) -> tuple[bool, bool, bool, bool]:
    """The 4-intersection bits of two open axis-aligned boxes, decided
    by interval arithmetic instead of the reference grid walk.  Boxes
    are (x1, y1, x2, y2) tuples with x1 < x2 and y1 < y2; boundaries are
    the closed rectangle frames."""
    ax1, ay1, ax2, ay2 = a
    bx1, by1, bx2, by2 = b
    # interior(a) ∩ interior(b): open x and y overlap.
    ii = (
        (ax1 if ax1 > bx1 else bx1) < (ax2 if ax2 < bx2 else bx2)
        and (ay1 if ay1 > by1 else by1) < (ay2 if ay2 < by2 else by2)
    )
    # interior(a) ∩ boundary(b): an edge of b's frame meets the open box
    # a — a vertical edge needs its x strictly inside a and its closed
    # y-range to meet a's open y-range, and symmetrically.
    ib = (
        (ax1 < bx1 < ax2 or ax1 < bx2 < ax2) and by1 < ay2 and ay1 < by2
    ) or ((ay1 < by1 < ay2 or ay1 < by2 < ay2) and bx1 < ax2 and ax1 < bx2)
    bi = (
        (bx1 < ax1 < bx2 or bx1 < ax2 < bx2) and ay1 < by2 and by1 < ay2
    ) or ((by1 < ay1 < by2 or by1 < ay2 < by2) and ax1 < bx2 and bx1 < ax2)
    # boundary(a) ∩ boundary(b): some edge pair meets.  Parallel edges
    # need a shared coordinate and closed overlap on the other axis;
    # perpendicular pairs factor into independent per-axis conditions.
    bb = (
        (
            (ax1 == bx1 or ax1 == bx2 or ax2 == bx1 or ax2 == bx2)
            and ay1 <= by2
            and by1 <= ay2
        )
        or (
            (ay1 == by1 or ay1 == by2 or ay2 == by1 or ay2 == by2)
            and ax1 <= bx2
            and bx1 <= ax2
        )
        or (
            (bx1 <= ax1 <= bx2 or bx1 <= ax2 <= bx2)
            and (ay1 <= by1 <= ay2 or ay1 <= by2 <= ay2)
        )
        or (
            (ax1 <= bx1 <= ax2 or ax1 <= bx2 <= ax2)
            and (by1 <= ay1 <= by2 or by1 <= ay2 <= by2)
        )
    )
    return ii, ib, bi, bb


def _rect_rect_atom(relation: str, a: tuple, b: tuple) -> bool:
    """Decide a relation atom between two quantified boxes in O(1),
    agreeing with :func:`rect_eval._atom_holds` on Rect arguments."""
    if relation == "subset":
        # interior(a) ⊆ interior(b) for open boxes.
        return b[0] <= a[0] and a[2] <= b[2] and b[1] <= a[1] and a[3] <= b[3]
    if relation == "equal":
        return a == b
    bits = _rect_rect_bits(a, b)
    if relation == "connect":
        return bits[0] or bits[1] or bits[2] or bits[3]
    return bits == _MATRIX_OF[relation]


# Relations r REL B that confine r to B's bounding box: each implies
# interior(r) ⊆ closure(B), hence x1 ≥ bbox.xmin, x2 ≤ bbox.xmax (and
# likewise in y) — the basis of the candidate-range pruning below.
_BBOX_CONFINING = frozenset({"subset", "equal", "inside", "coveredBy"})


class _RectTables:
    """Per-instance state for the compiled rect evaluator: per-axis
    breakpoint codes (for order-type memo keys) and a cache of atoms
    involving instance regions (decided by the reference grid walk)."""

    def __init__(self, instance: SpatialInstance):
        self.instance = instance
        xs: set = set()
        ys: set = set()
        for _name, region in instance.items():
            rx, ry = breakpoints_of(region)
            xs.update(rx)
            ys.update(ry)
        self.base_x: list[Fraction] = sorted(xs)
        self.base_y: list[Fraction] = sorted(ys)
        self.rectilinear = all(
            isinstance(region, (Rect, RectUnion))
            for _name, region in instance.items()
        )
        self._codes_x: dict = {}
        self._codes_y: dict = {}
        self._atom_cache: dict = {}
        self._bbox_cache: dict = {}

    @staticmethod
    def _code_in(base: list, codes: dict, value: Fraction) -> int:
        got = codes.get(value)
        if got is not None:
            return got
        i = bisect_left(base, value)
        if i < len(base) and base[i] == value:
            code = 2 * i + 1
        else:
            code = 2 * i
        codes[value] = code
        return code

    def code_x(self, value: Fraction) -> int:
        return self._code_in(self.base_x, self._codes_x, value)

    def code_y(self, value: Fraction) -> int:
        return self._code_in(self.base_y, self._codes_y, value)

    def bbox(self, name: str):
        got = self._bbox_cache.get(name)
        if got is None:
            got = self.instance.ext(name).bbox()
            self._bbox_cache[name] = got
        return got

    def atom_ext(self, relation: str, a, b) -> bool:
        """An atom with at least one instance-region side; *a*/*b* are
        (x1, y1, x2, y2) tuples or region names."""
        key = (relation, a, b)
        hit = self._atom_cache.get(key)
        if hit is None:
            ra = (
                self.instance.ext(a)
                if isinstance(a, str)
                else Rect(a[0], a[1], a[2], a[3])
            )
            rb = (
                self.instance.ext(b)
                if isinstance(b, str)
                else Rect(b[0], b[1], b[2], b[3])
            )
            counters.atoms_evaluated += 1
            hit = _atom_holds(relation, ra, rb)
            self._atom_cache[key] = hit
        return hit


_RectFn = Callable[[dict, dict, tuple, tuple], bool]


def _pair_range(values: list, lo, hi) -> tuple[int, int]:
    """Index range of candidates inside the closed interval [lo, hi]
    (None = unbounded)."""
    start = 0 if lo is None else bisect_left(values, lo)
    end = len(values) if hi is None else bisect_right(values, hi)
    return start, end


class _RectCompiler:
    """Compiles FO(Rect, Rect–Rect*) formulas into closures
    ``(renv, nenv, xs, ys) -> bool``.  Box–box atoms collapse to O(1)
    interval arithmetic; atoms against instance regions go through a
    cached grid walk.  Quantifier nodes get order-type memoization (the
    per-axis slab signature plus the positions of free boxes' corner
    coordinates — sound by S-genericity, Section 6) and candidate-range
    pruning from bbox-confining conjuncts such as ``subset(r, A)``."""

    def __init__(self, tables: _RectTables, budget: int):
        self.tables = tables
        self.budget = budget

    def _spend(self, n: int) -> None:
        self.budget -= n
        if self.budget < 0:
            raise QueryError(
                "rectangle quantifier search exceeded its budget"
            )

    # -- terms ---------------------------------------------------------------

    def _name_of(self, t: NameTerm):
        if isinstance(t, NameConst):
            value = t.value
            return lambda nenv: value
        if isinstance(t, NameVar):
            var = t.name

            def get(nenv):
                try:
                    return nenv[var]
                except KeyError:
                    raise QueryError(
                        f"unbound name variable {var!r}"
                    ) from None

            return get
        raise QueryError(f"bad name term {t!r}")

    # -- formulas ------------------------------------------------------------

    def compile(self, f: Formula) -> _RectFn:
        if isinstance(f, NameEq):
            left = self._name_of(f.left)
            right = self._name_of(f.right)
            return lambda renv, nenv, xs, ys: left(nenv) == right(nenv)
        if isinstance(f, Rel):
            return self._compile_atom(f)
        if isinstance(f, Not):
            inner = self.compile(f.inner)
            return lambda renv, nenv, xs, ys: not inner(renv, nenv, xs, ys)
        if isinstance(f, And):
            parts = [self.compile(p) for p in f.parts]
            if len(parts) == 2:
                a0, a1 = parts
                return lambda renv, nenv, xs, ys: a0(
                    renv, nenv, xs, ys
                ) and a1(renv, nenv, xs, ys)
            return lambda renv, nenv, xs, ys: all(
                p(renv, nenv, xs, ys) for p in parts
            )
        if isinstance(f, Or):
            parts = [self.compile(p) for p in f.parts]
            return lambda renv, nenv, xs, ys: any(
                p(renv, nenv, xs, ys) for p in parts
            )
        if isinstance(f, Implies):
            ante = self.compile(f.antecedent)
            cons = self.compile(f.consequent)
            return lambda renv, nenv, xs, ys: (
                not ante(renv, nenv, xs, ys)
            ) or cons(renv, nenv, xs, ys)
        if isinstance(f, (ExistsRegion, ForAllRegion)):
            return self._compile_region_quantifier(f)
        if isinstance(f, (ExistsName, ForAllName)):
            return self._compile_name_quantifier(f)
        raise QueryError(f"cannot evaluate {type(f).__name__}")

    def _compile_atom(self, f: Rel) -> _RectFn:
        rel = f.relation
        tables = self.tables
        c = counters
        lv = isinstance(f.left, RegionVar)
        rv = isinstance(f.right, RegionVar)
        if lv and rv:
            ln, rn = f.left.name, f.right.name

            def atom(renv, nenv, xs, ys):
                c.atoms_evaluated += 1
                try:
                    return _rect_rect_atom(rel, renv[ln], renv[rn])
                except KeyError as exc:
                    raise QueryError(
                        f"unbound region variable {exc.args[0]!r}"
                    ) from None

            return atom

        def side(t):
            if isinstance(t, RegionVar):
                var = t.name

                def get(renv, nenv):
                    try:
                        return renv[var]
                    except KeyError:
                        raise QueryError(
                            f"unbound region variable {var!r}"
                        ) from None

                return get
            if isinstance(t, Ext):
                name_of = self._name_of(t.name)
                return lambda renv, nenv: name_of(nenv)
            raise QueryError(f"bad region term {t!r}")

        left = side(f.left)
        right = side(f.right)
        return lambda renv, nenv, xs, ys: tables.atom_ext(
            rel, left(renv, nenv), right(renv, nenv)
        )

    # -- quantifiers ---------------------------------------------------------

    def _extract_bounds(self, parts: list, var: str):
        """Pull bbox-confining conjuncts ``REL(var, B)`` out of the
        conjunct list as closed candidate-coordinate bounds.  *B* may be
        a named instance region (static bbox) or an outer box variable
        (dynamic).  The atoms stay in the residual — the bounds only
        shrink the candidate ranges; skipped candidates would fail the
        atom anyway."""
        xlo: list = []
        xhi: list = []
        ylo: list = []
        yhi: list = []
        for p in parts:
            if (
                isinstance(p, Rel)
                and p.relation in _BBOX_CONFINING
                and isinstance(p.left, RegionVar)
                and p.left.name == var
            ):
                if isinstance(p.right, Ext) and isinstance(
                    p.right.name, NameConst
                ):
                    try:
                        box = self.tables.bbox(p.right.name.value)
                    except Exception:
                        continue
                    xlo.append(box.xmin)
                    xhi.append(box.xmax)
                    ylo.append(box.ymin)
                    yhi.append(box.ymax)
                elif (
                    isinstance(p.right, RegionVar) and p.right.name != var
                ):
                    nm = p.right.name
                    xlo.append((nm, 0))
                    ylo.append((nm, 1))
                    xhi.append((nm, 2))
                    yhi.append((nm, 3))
        return (xlo, xhi, ylo, yhi)

    def _partition_body(self, f, want: bool):
        """(filters, guard, rest, bounds) — as in the point compiler:
        quantifier-free conjunct filters (Exists-And), a vacuity guard
        (ForAll-Implies), bbox candidate bounds, and the compiled
        remainder."""
        body = f.body
        var = f.variable
        no_bounds = ([], [], [], [])
        if want:
            parts = flatten_and(body)
            if parts is not None:
                cheap = [p for p in parts if p.quantifier_depth() == 0]
                deep = [p for p in parts if p.quantifier_depth() > 0]
                if cheap:
                    bounds = self._extract_bounds(cheap, var)
                    flt = self.compile(
                        cheap[0] if len(cheap) == 1 else And(*cheap)
                    )
                    rest = (
                        self.compile(
                            deep[0] if len(deep) == 1 else And(*deep)
                        )
                        if deep
                        else None
                    )
                    return flt, None, rest, bounds
            return None, None, self.compile(body), no_bounds
        if isinstance(body, Implies):
            ante = flatten_and(body.antecedent)
            if ante is None:
                ante = [body.antecedent]
            bounds = self._extract_bounds(ante, var)
            guard = self.compile(
                ante[0] if len(ante) == 1 else And(*ante)
            )
            return None, guard, self.compile(body.consequent), bounds
        return None, None, self.compile(body), no_bounds

    @staticmethod
    def _bound(env: dict, entries: list, pick_max: bool):
        best = None
        for e in entries:
            v = env[e[0]][e[1]] if isinstance(e, tuple) else e
            if best is None or (v > best if pick_max else v < best):
                best = v
        return best

    def _compile_region_quantifier(self, f) -> _RectFn:
        want = isinstance(f, ExistsRegion)
        var = f.variable
        filters, guard, rest, bounds = self._partition_body(f, want)
        xlo_e, xhi_e, ylo_e, yhi_e = bounds
        has_bounds = bool(xlo_e or xhi_e)
        free_r = sorted(f.free_region_vars())
        free_n = sorted(f.free_name_vars())
        rectilinear = self.tables.rectilinear
        code_x = self.tables.code_x
        code_y = self.tables.code_y
        memo: dict = {}
        c = counters

        def fn(renv, nenv, xs, ys):
            if rectilinear:
                key = (
                    tuple(code_x(v) for v in xs),
                    tuple(code_y(v) for v in ys),
                    tuple(
                        (
                            bisect_left(xs, renv[x][0]),
                            bisect_left(ys, renv[x][1]),
                            bisect_left(xs, renv[x][2]),
                            bisect_left(ys, renv[x][3]),
                        )
                        for x in free_r
                    ),
                    tuple(nenv[x] for x in free_n),
                )
            else:
                key = (
                    xs,
                    ys,
                    tuple(renv[x] for x in free_r),
                    tuple(nenv[x] for x in free_n),
                )
            hit = memo.get(key)
            if hit is not None:
                c.memo_hits += 1
                return hit
            c.memo_misses += 1
            cands_x = _expanded_candidates(xs)
            cands_y = _expanded_candidates(ys)
            nx = len(cands_x)
            ny = len(cands_y)
            total = (nx * (nx - 1) // 2) * (ny * (ny - 1) // 2)
            self._spend(total)
            if has_bounds:
                sx, ex = _pair_range(
                    [t[0] for t in cands_x],
                    self._bound(renv, xlo_e, True),
                    self._bound(renv, xhi_e, False),
                )
                sy, ey = _pair_range(
                    [t[0] for t in cands_y],
                    self._bound(renv, ylo_e, True),
                    self._bound(renv, yhi_e, False),
                )
                kx = ex - sx
                ky = ey - sy
                c.candidates_pruned += total - (kx * (kx - 1) // 2) * (
                    ky * (ky - 1) // 2
                )
            else:
                sx, ex = 0, nx
                sy, ey = 0, ny
            prev = renv.get(var, _MISSING)
            result = not want
            try:
                for i1 in range(sx, ex):
                    vx1, px1, nw1 = cands_x[i1]
                    for i2 in range(i1 + 1, ex):
                        vx2, px2, nw2 = cands_x[i2]
                        # Positional insertion: candidate values carry
                        # their slot in the sorted breakpoint tuple, so
                        # extending it costs no comparisons.
                        if nw1:
                            if nw2:
                                xs2 = (
                                    xs[:px1]
                                    + (vx1,)
                                    + xs[px1:px2]
                                    + (vx2,)
                                    + xs[px2:]
                                )
                            else:
                                xs2 = xs[:px1] + (vx1,) + xs[px1:]
                        elif nw2:
                            xs2 = xs[:px2] + (vx2,) + xs[px2:]
                        else:
                            xs2 = xs
                        for j1 in range(sy, ey):
                            vy1, py1, mw1 = cands_y[j1]
                            for j2 in range(j1 + 1, ey):
                                vy2, py2, mw2 = cands_y[j2]
                                if mw1:
                                    if mw2:
                                        ys2 = (
                                            ys[:py1]
                                            + (vy1,)
                                            + ys[py1:py2]
                                            + (vy2,)
                                            + ys[py2:]
                                        )
                                    else:
                                        ys2 = ys[:py1] + (vy1,) + ys[py1:]
                                elif mw2:
                                    ys2 = ys[:py2] + (vy2,) + ys[py2:]
                                else:
                                    ys2 = ys
                                renv[var] = (vx1, vy1, vx2, vy2)
                                if filters is not None and not filters(
                                    renv, nenv, xs2, ys2
                                ):
                                    c.candidates_pruned += 1
                                    continue
                                if guard is not None and not guard(
                                    renv, nenv, xs2, ys2
                                ):
                                    c.candidates_pruned += 1
                                    continue
                                if (
                                    rest is None
                                    or rest(renv, nenv, xs2, ys2) == want
                                ):
                                    result = want
                                    raise _Found
            except _Found:
                pass
            finally:
                if prev is _MISSING:
                    renv.pop(var, None)
                else:
                    renv[var] = prev
            memo[key] = result
            return result

        return fn

    def _compile_name_quantifier(self, f) -> _RectFn:
        want = isinstance(f, ExistsName)
        var = f.variable
        names = tuple(self.tables.instance.names())
        body = self.compile(f.body)

        def fn(renv, nenv, xs, ys):
            prev = nenv.get(var, _MISSING)
            try:
                for name in names:
                    nenv[var] = name
                    if body(renv, nenv, xs, ys) == want:
                        return want
                return not want
            finally:
                if prev is _MISSING:
                    nenv.pop(var, None)
                else:
                    nenv[var] = prev

        return fn


class _Found(Exception):
    """Internal: unwinds the 4-deep rectangle candidate loops."""


def evaluate_rect_compiled(
    formula: Formula,
    instance: SpatialInstance,
    max_assignments: int = 5_000_000,
) -> bool:
    """Compiled evaluation of an FO(Rect, Rect–Rect*) sentence — same
    answers as :func:`~repro.logic.rect_eval.evaluate_rect_reference`."""
    if not formula.is_sentence():
        raise QueryError("can only evaluate sentences")
    tables = _RectTables(instance)
    compiler = _RectCompiler(tables, max_assignments)
    fn = compiler.compile(formula)
    return fn({}, {}, tuple(tables.base_x), tuple(tables.base_y))


add_counter_source(counters.snapshot)
