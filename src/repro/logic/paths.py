"""Decision procedure for disjoint-connection queries (Example 4.2).

The Fig. 7 separating queries ask for pairwise *disjoint* regions, each
connecting one pair of named regions while avoiding all others:

    ∃r1 … ∃rk .  ⋀i path(Xi, ri, Yi)  ∧  ⋀i<j disjoint(ri, rj)

Under cell semantics a connecting region can be normalized to an
*induced simple path of faces*: any connecting region can be shrunk to a
face path, and any face path can be shortcut to an induced one, which
only blocks fewer cells — so searching induced paths is complete.  The
grid overlay is deliberately coarse (:func:`coarse_grid_complex`): just
enough exterior cells for witnesses to exist without a combinatorial
explosion.
"""

from __future__ import annotations

from ..errors import QueryError
from ..regions import SpatialInstance
from .cell_eval import CellModel, coarse_grid_complex

__all__ = ["disjoint_connections"]


def disjoint_connections(
    instance: SpatialInstance,
    pairs: list[tuple[str, str]],
    grid_lines: int | None = None,
    node_budget: int = 2_000_000,
) -> bool:
    """Do pairwise-disjoint connections exist for all the given pairs?

    For each pair ``(X, Y)`` the connection must avoid (not even touch)
    every other region named in *pairs*; the connections' closures must
    be pairwise disjoint (the paper's ``disjoint``).
    """
    model = CellModel(
        instance, complex=coarse_grid_complex(instance, grid_lines)
    )
    cx = model.complex
    all_names = {n for pair in pairs for n in pair}

    down: dict[str, set[str]] = {c: set() for c in cx.cells}
    for (a, b) in cx.incidences:
        down[b].add(a)
    closure: dict[str, frozenset[str]] = {}
    for f in (c.id for c in cx.faces):
        cells = {f} | down[f]
        extra = set()
        for c in cells:
            extra |= down.get(c, set())
        closure[f] = frozenset(cells | extra)

    name_index = {n: cx.names.index(n) for n in cx.names}

    def touches(face: str, name: str) -> bool:
        i = name_index[name]
        return any(cx.cells[c].label[i] != "e" for c in closure[face])

    searches = []
    for (x, y) in pairs:
        avoided = sorted(all_names - {x, y})
        usable = [
            f.id
            for f in cx.faces
            if not any(touches(f.id, z) for z in avoided)
        ]
        usable_set = set(usable)
        starts = sorted(f for f in usable if touches(f, x))
        ends = {f for f in usable if touches(f, y)}
        adjacency: dict[str, set[str]] = {f: set() for f in usable}
        for f in usable:
            for (_e, g) in model._face_adj.get(f, ()):
                if g in usable_set:
                    adjacency[f].add(g)
        searches.append((starts, ends, adjacency))

    # Cheapest searches first: fail fast when a pair has no room at all.
    order = sorted(
        range(len(searches)), key=lambda i: len(searches[i][0])
    )
    searches = [searches[i] for i in order]

    budget = [node_budget]

    def reachable(j: int, blocked: frozenset[str]) -> bool:
        """Cheap lookahead: ignoring mutual disjointness, can pair *j*
        still be connected outside *blocked*?"""
        starts, ends, adjacency = searches[j]
        frontier = [
            s for s in starts if not (closure[s] & blocked)
        ]
        seen = set(frontier)
        while frontier:
            f = frontier.pop()
            if f in ends:
                return True
            for g in adjacency[f]:
                if g not in seen and not (closure[g] & blocked):
                    seen.add(g)
                    frontier.append(g)
        return False

    def search(i: int, blocked: frozenset[str]) -> bool:
        if i == len(searches):
            return True
        for j in range(i, len(searches)):
            if not reachable(j, blocked):
                return False
        starts, ends, adjacency = searches[i]

        def extend(path: list[str], used_cells: frozenset[str]) -> bool:
            budget[0] -= 1
            if budget[0] <= 0:
                raise QueryError(
                    "disjoint-connection search exceeded its node budget"
                )
            face = path[-1]
            if face in ends:
                if search(i + 1, blocked | used_cells):
                    return True
                # A longer continuation would only block more cells.
                return False
            banned = set(path[:-1])
            for g in sorted(adjacency[face]):
                if g in path:
                    continue
                # Induced-path pruning: the new face may touch only the
                # current path head, not earlier faces.
                if adjacency[g] & banned:
                    continue
                if closure[g] & blocked:
                    continue
                if extend(path + [g], used_cells | closure[g]):
                    return True
            return False

        for s in starts:
            if closure[s] & blocked:
                continue
            if extend([s], frozenset(closure[s])):
                return True
        return False

    return search(0, frozenset())
