"""Quantification over Rect* — bounded unions of rectangles.

Proposition 4.5 of the paper identifies SO(Rect, ·) — second-order
quantification over finite *sets* of rectangles — with FO(Rect*, ·):
a quantified Rect* region simply *is* a finite union of rectangles
forming a disc.  This evaluator makes that concrete: region variables
range over :class:`~repro.regions.RectUnion` values assembled from at
most ``max_rects`` candidate rectangles of the order-abstraction grid,
validated to be discs by the RectUnion constructor itself (connectivity
and simple connectivity — the paper's ``isDisc``).

Like the other decidable evaluators, cost explodes with the number of
rectangles per value and with quantifier depth; the budget caps report
loudly.  Theorem 4.4's proof predicates (``edge``, ``corner``,
``oneedge``) are provided as executable forms.
"""

from __future__ import annotations

from ..errors import QueryError, RegionError
from ..regions import Rect, RectUnion, Region, SpatialInstance
from .ast import (
    And,
    ExistsName,
    ExistsRegion,
    Ext,
    ForAllName,
    ForAllRegion,
    Formula,
    Implies,
    NameConst,
    NameEq,
    Not,
    Or,
    RegionVar,
    Rel,
)
from .rect_eval import _atom_holds, _candidates, breakpoints_of

__all__ = [
    "evaluate_rectstar",
    "edge_predicate",
    "corner_predicate",
    "is_rectangle_predicate",
]


def _rect_candidates(xs, ys) -> list[Rect]:
    """Candidate rectangles, breakpoint-aligned ones first.

    Witnesses for equality/containment atoms typically sit exactly on
    instance breakpoints; enumerating those first lets existential
    searches terminate quickly, while completeness is unchanged.
    """
    cx = _candidates(xs)
    cy = _candidates(ys)
    on_break_x = set(xs)
    on_break_y = set(ys)
    aligned: list[Rect] = []
    rest: list[Rect] = []
    for i1 in range(len(cx)):
        for i2 in range(i1 + 1, len(cx)):
            for j1 in range(len(cy)):
                for j2 in range(j1 + 1, len(cy)):
                    rect = Rect(cx[i1], cy[j1], cx[i2], cy[j2])
                    if (
                        cx[i1] in on_break_x
                        and cx[i2] in on_break_x
                        and cy[j1] in on_break_y
                        and cy[j2] in on_break_y
                    ):
                        aligned.append(rect)
                    else:
                        rest.append(rect)
    return aligned + rest


def _union_candidates(xs, ys, max_rects: int, budget: list[int]):
    """All disc-shaped unions of up to max_rects candidate rectangles.

    A generator: existential quantifiers stop at the first witness
    without materializing the (large) candidate space.
    """
    from itertools import combinations

    rects = _rect_candidates(xs, ys)
    for k in range(1, max_rects + 1):
        for combo in combinations(rects, k):
            budget[0] -= 1
            if budget[0] < 0:
                raise QueryError(
                    "Rect* quantifier enumeration exceeded its budget"
                )
            if k == 1:
                yield combo[0]
                continue
            if k == 2:
                # Two open rectangles form a disc iff their interiors
                # properly overlap — a constant-time pre-check that
                # skips the (dominant) disconnected pairs.
                r1, r2 = combo
                if not (
                    r1.x1 < r2.x2
                    and r2.x1 < r1.x2
                    and r1.y1 < r2.y2
                    and r2.y1 < r1.y2
                ):
                    continue
            try:
                yield RectUnion(list(combo))
            except RegionError:
                continue  # not a disc


def evaluate_rectstar(
    formula: Formula,
    instance: SpatialInstance,
    max_rects: int = 2,
    budget: int = 2_000_000,
) -> bool:
    """Evaluate a sentence with Rect*-ranging region quantifiers."""
    if not formula.is_sentence():
        raise QueryError("can only evaluate sentences")
    xs: set = set()
    ys: set = set()
    for _name, region in instance.items():
        rx, ry = breakpoints_of(region)
        xs.update(rx)
        ys.update(ry)
    state = [budget]
    cache: dict = {}

    def atom(relation, a, b):
        key = (relation, a, b)
        if key not in cache:
            cache[key] = _atom_holds(relation, a, b)
        return cache[key]

    def region_of(term, renv, nenv):
        if isinstance(term, RegionVar):
            return renv[term.name]
        if isinstance(term, Ext):
            name = (
                term.name.value
                if isinstance(term.name, NameConst)
                else nenv[term.name.name]
            )
            return instance.ext(name)
        raise QueryError(f"bad region term {term!r}")

    def rec(f, cur_xs, cur_ys, renv, nenv) -> bool:
        if isinstance(f, NameEq):
            lv = (
                f.left.value
                if isinstance(f.left, NameConst)
                else nenv[f.left.name]
            )
            rv = (
                f.right.value
                if isinstance(f.right, NameConst)
                else nenv[f.right.name]
            )
            return lv == rv
        if isinstance(f, Rel):
            return atom(
                f.relation,
                region_of(f.left, renv, nenv),
                region_of(f.right, renv, nenv),
            )
        if isinstance(f, Not):
            return not rec(f.inner, cur_xs, cur_ys, renv, nenv)
        if isinstance(f, And):
            return all(rec(p, cur_xs, cur_ys, renv, nenv) for p in f.parts)
        if isinstance(f, Or):
            return any(rec(p, cur_xs, cur_ys, renv, nenv) for p in f.parts)
        if isinstance(f, Implies):
            return (
                not rec(f.antecedent, cur_xs, cur_ys, renv, nenv)
            ) or rec(f.consequent, cur_xs, cur_ys, renv, nenv)
        if isinstance(f, (ExistsRegion, ForAllRegion)):
            want = isinstance(f, ExistsRegion)
            for value in _union_candidates(
                sorted(cur_xs), sorted(cur_ys), max_rects, state
            ):
                vx, vy = breakpoints_of(value)
                renv2 = dict(renv)
                renv2[f.variable] = value
                result = rec(
                    f.body,
                    cur_xs | set(vx),
                    cur_ys | set(vy),
                    renv2,
                    nenv,
                )
                if result == want:
                    return want
            return not want
        if isinstance(f, (ExistsName, ForAllName)):
            want = isinstance(f, ExistsName)
            for name in instance.names():
                nenv2 = dict(nenv)
                nenv2[f.variable] = name
                if rec(f.body, cur_xs, cur_ys, renv, nenv2) == want:
                    return want
            return not want
        raise QueryError(f"cannot evaluate {type(f).__name__}")

    return rec(formula, set(xs), set(ys), {}, {})


# -- Theorem 4.4's proof predicates, in executable form -------------------------


def _subset_of_union(r: Region, a: Region, b: Region) -> bool:
    """``r ⊆ a ∪ b`` decided on the common refined grid (the paper
    expresses this with the connect trick of Section 4)."""
    from ..geometry import Location
    from .rect_eval import _grid_reps

    xs: set = set()
    ys: set = set()
    for reg in (r, a, b):
        rx, ry = breakpoints_of(reg)
        xs.update(rx)
        ys.update(ry)
    for p in _grid_reps(sorted(xs), sorted(ys)):
        if r.classify(p) is Location.INTERIOR:
            if (
                a.classify(p) is Location.EXTERIOR
                and b.classify(p) is Location.EXTERIOR
            ):
                return False
    return True


def edge_predicate(r: Region, rp: Region) -> bool:
    """Theorem 4.4's ``edge(r, r')``: the regions meet along a
    nonzero-length piece of edge — witnessed by a rectangle overlapping
    both while staying inside their union."""
    if _atom_holds("meet", r, rp) is False:
        return False
    xs: set = set()
    ys: set = set()
    for reg in (r, rp):
        rx, ry = breakpoints_of(reg)
        xs.update(rx)
        ys.update(ry)
    for witness in _rect_candidates(sorted(xs), sorted(ys)):
        if (
            _atom_holds("overlap", witness, r)
            and _atom_holds("overlap", witness, rp)
            and _subset_of_union(witness, r, rp)
        ):
            return True
    return False


def corner_predicate(r: Region, rp: Region) -> bool:
    """Theorem 4.4's ``corner(r, r')``: meet but not along an edge."""
    return _atom_holds("meet", r, rp) and not edge_predicate(r, rp)


def is_rectangle_predicate(region: Region) -> bool:
    """Theorem 4.4's (-): 'is r a rectangle?' — here decided by the
    four-corner criterion made geometric (exactly four corner-meeting
    witness positions), implemented directly on the boundary."""
    from ..transforms import is_rect_polygon

    try:
        return is_rect_polygon(region)
    except Exception:
        return False
