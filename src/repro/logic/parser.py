"""A concrete syntax for FO(Region, Region') queries.

Grammar (precedence low to high: ``->``, ``or``, ``and``, ``not``)::

    formula   := quantified | implication
    quantified:= ("exists" | "forall") ["name"] IDENT ("," IDENT)* "." formula
    implication := disjunction [ "->" formula ]
    disjunction := conjunction ("or" conjunction)*
    conjunction := negation ("and" negation)*
    negation  := "not" negation | atom
    atom      := REL "(" term "," term ")"
               | IDENT "=" IDENT
               | "(" formula ")"
    term      := IDENT | "ext" "(" IDENT ")"

Identifier resolution follows the paper's conventions: an identifier
bound by a region quantifier is a region variable; bound by a name
quantifier, a name variable; unbound identifiers are name *constants*
and stand for ``ext(<constant>)`` in region positions (the paper's sugar
``inside(r, A)``).

Example::

    parse("exists r . subset(r, A) and subset(r, B) and subset(r, C)")
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import ParseError
from .ast import (
    And,
    ExistsName,
    ExistsRegion,
    Ext,
    ForAllName,
    ForAllRegion,
    Formula,
    Implies,
    NameConst,
    NameEq,
    NameVar,
    Not,
    Or,
    RegionVar,
    Rel,
    RELATION_NAMES,
)

__all__ = ["parse"]

_TOKEN = re.compile(
    r"\s*(?:(?P<arrow>->)|(?P<punct>[().,=])|(?P<word>[A-Za-z_][A-Za-z_0-9]*))"
)

_KEYWORDS = {"exists", "forall", "and", "or", "not", "name", "ext"}


@dataclass
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN.match(text, pos)
        if not m or m.end() == pos:
            if text[pos:].strip():
                raise ParseError(
                    f"unexpected character {text[pos]!r}", pos
                )
            break
        pos = m.end()
        if m.group("arrow"):
            tokens.append(_Token("arrow", "->", m.start()))
        elif m.group("punct"):
            tokens.append(_Token("punct", m.group("punct"), m.start()))
        else:
            word = m.group("word")
            kind = "keyword" if word in _KEYWORDS else "ident"
            tokens.append(_Token(kind, word, m.start()))
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.tokens = _tokenize(text)
        self.i = 0
        self.region_vars: list[set[str]] = [set()]
        self.name_vars: list[set[str]] = [set()]

    # -- token helpers ------------------------------------------------------------

    def peek(self) -> _Token | None:
        return self.tokens[self.i] if self.i < len(self.tokens) else None

    def next(self) -> _Token:
        tok = self.peek()
        if tok is None:
            raise ParseError("unexpected end of query")
        self.i += 1
        return tok

    def expect(self, text: str) -> _Token:
        tok = self.next()
        if tok.text != text:
            raise ParseError(
                f"expected {text!r}, found {tok.text!r}", tok.position
            )
        return tok

    def at(self, text: str) -> bool:
        tok = self.peek()
        return tok is not None and tok.text == text

    # -- grammar ------------------------------------------------------------------

    def parse(self) -> Formula:
        f = self.formula()
        tok = self.peek()
        if tok is not None:
            raise ParseError(
                f"trailing input at {tok.text!r}", tok.position
            )
        return f

    def formula(self) -> Formula:
        if self.at("exists") or self.at("forall"):
            return self.quantified()
        return self.implication()

    def quantified(self) -> Formula:
        kind = self.next().text
        name_sort = False
        if self.at("name"):
            self.next()
            name_sort = True
        variables = [self._ident("variable")]
        while self.at(","):
            self.next()
            variables.append(self._ident("variable"))
        self.expect(".")
        scope = self.name_vars if name_sort else self.region_vars
        scope.append(scope[-1] | set(variables))
        try:
            body = self.formula()
        finally:
            scope.pop()
        for v in reversed(variables):
            if name_sort:
                body = (
                    ExistsName(v, body)
                    if kind == "exists"
                    else ForAllName(v, body)
                )
            else:
                body = (
                    ExistsRegion(v, body)
                    if kind == "exists"
                    else ForAllRegion(v, body)
                )
        return body

    def implication(self) -> Formula:
        left = self.disjunction()
        if self.at("->"):
            self.next()
            return Implies(left, self.formula())
        return left

    def disjunction(self) -> Formula:
        parts = [self.conjunction()]
        while self.at("or"):
            self.next()
            parts.append(self.conjunction())
        return parts[0] if len(parts) == 1 else Or(*parts)

    def conjunction(self) -> Formula:
        parts = [self.negation()]
        while self.at("and"):
            self.next()
            parts.append(self.negation())
        return parts[0] if len(parts) == 1 else And(*parts)

    def negation(self) -> Formula:
        if self.at("not"):
            self.next()
            return Not(self.negation())
        return self.atom()

    def atom(self) -> Formula:
        tok = self.peek()
        if tok is None:
            raise ParseError("unexpected end of query")
        if tok.text == "(":
            self.next()
            f = self.formula()
            self.expect(")")
            return f
        if tok.text == "exists" or tok.text == "forall":
            return self.quantified()
        if tok.kind == "ident" and tok.text in RELATION_NAMES:
            rel = self.next().text
            self.expect("(")
            left = self.region_term()
            self.expect(",")
            right = self.region_term()
            self.expect(")")
            return Rel(rel, left, right)
        # name equality: IDENT = IDENT
        first = self._ident("name expression")
        self.expect("=")
        second = self._ident("name expression")
        return NameEq(self._name_term(first), self._name_term(second))

    def region_term(self):
        if self.at("ext"):
            self.next()
            self.expect("(")
            inner = self._ident("name expression")
            self.expect(")")
            return Ext(self._name_term(inner))
        ident = self._ident("region expression")
        if ident in self.region_vars[-1]:
            return RegionVar(ident)
        return Ext(self._name_term(ident))

    def _name_term(self, ident: str):
        if ident in self.name_vars[-1]:
            return NameVar(ident)
        if ident in self.region_vars[-1]:
            raise ParseError(
                f"{ident!r} is a region variable, not a name"
            )
        return NameConst(ident)

    def _ident(self, what: str) -> str:
        tok = self.next()
        if tok.kind != "ident":
            raise ParseError(
                f"expected {what}, found {tok.text!r}", tok.position
            )
        return tok.text


def parse(text: str) -> Formula:
    """Parse a query in the concrete syntax into the logic AST."""
    return _Parser(text).parse()
