"""Order-abstraction evaluation of FO(Rect, Rect–Rect*) (Theorem 6.4).

Quantifiers over the infinite set Rect reduce to a finite search because
all queries of this language are S-generic: only the *interleaving
order* of rectangle coordinates with the instance's breakpoints matters.
A quantified rectangle can therefore be normalized so that each corner
coordinate is either an existing breakpoint or a fresh value strictly
between two consecutive breakpoints (or beyond the extremes); midpoints
realize all such choices.  Inner quantifiers see the outer choices as
additional breakpoints, completing the standard dense-order decision
procedure.  Data complexity is polynomial for a fixed query; query
complexity blows up exponentially with quantifier depth (Theorem 6.5's
PSPACE bound), which the benchmarks measure.

Atoms are decided exactly on rectilinear regions through a common
refined grid (no floating point, no geometry library at query time).
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache

from ..errors import QueryError
from ..geometry import Location, Point
from ..regions import Rect, Region, SpatialInstance
from .ast import (
    And,
    ExistsName,
    ExistsRegion,
    Ext,
    ForAllName,
    ForAllRegion,
    Formula,
    Implies,
    NameConst,
    NameEq,
    NameVar,
    Not,
    Or,
    RegionVar,
    Rel,
)

__all__ = [
    "evaluate_rect",
    "evaluate_rect_reference",
    "rectilinear_relation",
    "breakpoints_of",
    "instance_values",
]


def breakpoints_of(region: Region) -> tuple[list[Fraction], list[Fraction]]:
    """The x and y breakpoints of a rectilinear region."""
    xs: set[Fraction] = set()
    ys: set[Fraction] = set()
    for seg in region.boundary_segments():
        for p in seg.endpoints():
            xs.add(p.x)
            ys.add(p.y)
    return sorted(xs), sorted(ys)


def instance_values(instance: SpatialInstance) -> list[Fraction]:
    """All breakpoints of an instance, x and y merged and sorted — the
    value universe of the point/real order abstraction (Section 5)."""
    vals: set[Fraction] = set()
    for _n, region in instance.items():
        xs, ys = breakpoints_of(region)
        vals.update(xs)
        vals.update(ys)
    return sorted(vals)


def _grid_reps(xs: list[Fraction], ys: list[Fraction]):
    """Representative points of every cell, edge and vertex of the grid
    spanned by the given coordinates, extended one unit outward."""
    gx = [xs[0] - 1, *xs, xs[-1] + 1]
    gy = [ys[0] - 1, *ys, ys[-1] + 1]
    reps: list[Point] = []
    cols: list[Fraction] = []
    for i, x in enumerate(gx):
        cols.append(x)
        if i + 1 < len(gx):
            cols.append((x + gx[i + 1]) / 2)
    rows: list[Fraction] = []
    for j, y in enumerate(gy):
        rows.append(y)
        if j + 1 < len(gy):
            rows.append((y + gy[j + 1]) / 2)
    for x in cols:
        for y in rows:
            reps.append(Point(x, y))
    return reps


def rectilinear_relation(a: Region, b: Region) -> str:
    """The Egenhofer relation between two rectilinear regions, decided on
    the common refined grid (exact, no arrangement construction)."""
    bits = _rectilinear_bits(a, b)
    from ..fourint import REALIZABLE_MATRICES

    try:
        return REALIZABLE_MATRICES[bits].value
    except KeyError:
        raise QueryError(
            f"unrealizable 4-intersection pattern {bits} between regions"
        ) from None


def _rectilinear_bits(a: Region, b: Region) -> tuple[bool, bool, bool, bool]:
    xs_a, ys_a = breakpoints_of(a)
    xs_b, ys_b = breakpoints_of(b)
    xs = sorted(set(xs_a) | set(xs_b))
    ys = sorted(set(ys_a) | set(ys_b))
    ii = ib = bi = bb = False
    for p in _grid_reps(xs, ys):
        ca = a.classify(p)
        cb = b.classify(p)
        if ca is Location.INTERIOR and cb is Location.INTERIOR:
            ii = True
        elif ca is Location.INTERIOR and cb is Location.BOUNDARY:
            ib = True
        elif ca is Location.BOUNDARY and cb is Location.INTERIOR:
            bi = True
        elif ca is Location.BOUNDARY and cb is Location.BOUNDARY:
            bb = True
    return (ii, ib, bi, bb)


_MATRIX_OF = {
    "disjoint": (False, False, False, False),
    "meet": (False, False, False, True),
    "overlap": (True, True, True, True),
    "equal": (True, False, False, True),
    "inside": (True, False, True, False),
    "contains": (True, True, False, False),
    "coveredBy": (True, False, True, True),
    "covers": (True, True, False, True),
}


def _atom_holds(relation: str, a: Region, b: Region) -> bool:
    if relation == "equal":
        # Fast necessary condition: equal rectilinear regions have equal
        # breakpoint sets.  Saves the grid walk on the (overwhelmingly
        # common) unequal candidates during quantifier search.
        if breakpoints_of(a) != breakpoints_of(b):
            return False
    bits = _rectilinear_bits(a, b)
    if relation == "connect":
        return any(bits)
    if relation == "subset":
        # a's interior inside b's interior: no interior cell of a may be
        # on b's boundary or exterior.
        xs_a, ys_a = breakpoints_of(a)
        xs_b, ys_b = breakpoints_of(b)
        xs = sorted(set(xs_a) | set(xs_b))
        ys = sorted(set(ys_a) | set(ys_b))
        for p in _grid_reps(xs, ys):
            if (
                a.classify(p) is Location.INTERIOR
                and b.classify(p) is not Location.INTERIOR
            ):
                return False
        return True
    return bits == _MATRIX_OF[relation]


def _candidates(values: list[Fraction]) -> list[Fraction]:
    """Existing values, midpoints of gaps, and one value beyond each end."""
    out = [values[0] - 1]
    for a, b in zip(values, values[1:]):
        out.append(a)
        out.append((a + b) / 2)
    out.append(values[-1])
    out.append(values[-1] + 1)
    return out


def evaluate_rect(
    formula: Formula,
    instance: SpatialInstance,
    max_assignments: int = 5_000_000,
    engine: str = "compiled",
) -> bool:
    """Evaluate a sentence with rectangle-ranging quantifiers.

    The instance must be rectilinear (Rect or Rect* extents).  Raises
    :class:`QueryError` if the search would exceed *max_assignments*
    candidate rectangles in total.  ``engine`` selects the compiled
    evaluator (:mod:`repro.logic.compiled`, the default) or the seed
    ``"reference"`` interpreter; both return identical answers.
    """
    if engine == "compiled":
        from .compiled import evaluate_rect_compiled

        return evaluate_rect_compiled(formula, instance, max_assignments)
    if engine != "reference":
        raise QueryError(f"unknown rect engine {engine!r}")
    return evaluate_rect_reference(formula, instance, max_assignments)


def evaluate_rect_reference(
    formula: Formula,
    instance: SpatialInstance,
    max_assignments: int = 5_000_000,
) -> bool:
    """The seed interpreter for rectangle quantifiers (reference path)."""
    if not formula.is_sentence():
        raise QueryError("can only evaluate sentences")
    xs: set[Fraction] = set()
    ys: set[Fraction] = set()
    for _name, region in instance.items():
        rx, ry = breakpoints_of(region)
        xs.update(rx)
        ys.update(ry)
    state = _EvalState(instance, max_assignments)
    return state.eval(formula, sorted(xs), sorted(ys), {}, {})


class _EvalState:
    def __init__(self, instance: SpatialInstance, max_assignments: int):
        self.instance = instance
        self.budget = max_assignments
        self._atom_cache: dict = {}

    def _spend(self, n: int) -> None:
        self.budget -= n
        if self.budget < 0:
            raise QueryError(
                "rectangle quantifier search exceeded its budget"
            )

    def _region_of(self, term, renv, nenv) -> Region:
        if isinstance(term, RegionVar):
            try:
                return renv[term.name]
            except KeyError:
                raise QueryError(
                    f"unbound region variable {term.name!r}"
                ) from None
        if isinstance(term, Ext):
            name = (
                term.name.value
                if isinstance(term.name, NameConst)
                else nenv[term.name.name]
            )
            return self.instance.ext(name)
        raise QueryError(f"bad region term {term!r}")

    def _atom(self, relation: str, a: Region, b: Region) -> bool:
        # Rect values hash by value; instance extents are persistent
        # objects hashed by identity — both are safe cache keys.
        key = (relation, a, b)
        cached = self._atom_cache.get(key)
        if cached is None:
            cached = _atom_holds(relation, a, b)
            self._atom_cache[key] = cached
        return cached

    def eval(self, f: Formula, xs, ys, renv, nenv) -> bool:
        if isinstance(f, NameEq):
            lv = (
                f.left.value
                if isinstance(f.left, NameConst)
                else nenv[f.left.name]
            )
            rv = (
                f.right.value
                if isinstance(f.right, NameConst)
                else nenv[f.right.name]
            )
            return lv == rv
        if isinstance(f, Rel):
            return self._atom(
                f.relation,
                self._region_of(f.left, renv, nenv),
                self._region_of(f.right, renv, nenv),
            )
        if isinstance(f, Not):
            return not self.eval(f.inner, xs, ys, renv, nenv)
        if isinstance(f, And):
            return all(self.eval(p, xs, ys, renv, nenv) for p in f.parts)
        if isinstance(f, Or):
            return any(self.eval(p, xs, ys, renv, nenv) for p in f.parts)
        if isinstance(f, Implies):
            return (
                not self.eval(f.antecedent, xs, ys, renv, nenv)
            ) or self.eval(f.consequent, xs, ys, renv, nenv)
        if isinstance(f, (ExistsRegion, ForAllRegion)):
            want = isinstance(f, ExistsRegion)
            cx = _candidates(xs)
            cy = _candidates(ys)
            count = (len(cx) * (len(cx) - 1) // 2) * (
                len(cy) * (len(cy) - 1) // 2
            )
            self._spend(count)
            for i1 in range(len(cx)):
                for i2 in range(i1 + 1, len(cx)):
                    for j1 in range(len(cy)):
                        for j2 in range(j1 + 1, len(cy)):
                            rect = Rect(cx[i1], cy[j1], cx[i2], cy[j2])
                            renv2 = dict(renv)
                            renv2[f.variable] = rect
                            xs2 = sorted(set(xs) | {cx[i1], cx[i2]})
                            ys2 = sorted(set(ys) | {cy[j1], cy[j2]})
                            result = self.eval(
                                f.body, xs2, ys2, renv2, nenv
                            )
                            if result == want:
                                return want
            return not want
        if isinstance(f, (ExistsName, ForAllName)):
            want = isinstance(f, ExistsName)
            for name in self.instance.names():
                nenv2 = dict(nenv)
                nenv2[f.variable] = name
                if self.eval(f.body, xs, ys, renv, nenv2) == want:
                    return want
            return not want
        raise QueryError(f"cannot evaluate {type(f).__name__}")
