"""Line segments with exact endpoints."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import GeometryError
# The filtered kernel is a drop-in exact equivalent of the seed
# predicates (see repro.geometry.fastkernel); segments are on the
# arrangement hot path, so they use it directly.
from .fastkernel import on_segment, segment_intersection
from .point import Point, midpoint

__all__ = ["Segment"]


@dataclass(frozen=True, slots=True)
class Segment:
    """A closed, nondegenerate line segment between two rational points.

    Segments are unordered for equality/hashing purposes: the constructor
    normalizes endpoints to lexicographic order, so ``Segment(a, b) ==
    Segment(b, a)``.
    """

    a: Point
    b: Point

    def __init__(self, a: Point, b: Point):
        if a == b:
            raise GeometryError(f"degenerate segment at {a!r}")
        lo, hi = sorted((a, b), key=Point.lex_key)
        object.__setattr__(self, "a", lo)
        object.__setattr__(self, "b", hi)

    # -- queries -------------------------------------------------------------

    @property
    def direction(self) -> Point:
        return self.b - self.a

    def midpoint(self) -> Point:
        return midpoint(self.a, self.b)

    def contains(self, p: Point) -> bool:
        """True iff *p* lies on the closed segment."""
        return on_segment(p, self.a, self.b)

    def contains_interior(self, p: Point) -> bool:
        """True iff *p* lies strictly inside the segment."""
        return self.contains(p) and p != self.a and p != self.b

    def endpoints(self) -> tuple[Point, Point]:
        return (self.a, self.b)

    def intersect(self, other: "Segment") -> tuple[str, object]:
        """Classify the intersection with *other*.

        See :func:`repro.geometry.predicates.segment_intersection`.
        """
        return segment_intersection(self.a, self.b, other.a, other.b)

    def split_at(self, points: list[Point]) -> list["Segment"]:
        """Split this segment at every given interior point.

        Points not strictly inside the segment are ignored; duplicates are
        collapsed.  Returns the resulting subsegments ordered from
        ``self.a`` to ``self.b``.
        """
        interior = sorted(
            {p for p in points if self.contains_interior(p)}, key=Point.lex_key
        )
        stops = [self.a, *interior, self.b]
        return [Segment(p, q) for p, q in zip(stops, stops[1:])]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Segment({self.a!r}, {self.b!r})"
