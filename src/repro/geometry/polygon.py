"""Simple polygons over the rational plane.

A :class:`SimplePolygon` is the closed polygonal chain through a cyclic
list of vertices, with exact point location (interior / boundary /
exterior), signed area, orientation normalization, and an exact interior
sample point — everything the region model and the arrangement labeler
need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from fractions import Fraction
from typing import Iterable, Sequence

from ..errors import GeometryError
# on_segment comes from the filtered kernel: point location scans every
# edge for boundary contact, and the filter rejects the non-collinear
# common case without rational arithmetic (results are identical).
from .fastkernel import on_segment
from .point import Point, midpoint
from .predicates import (
    collinear,
    orientation,
    segments_properly_intersect,
    strictly_between,
)
from .segment import Segment

__all__ = ["Location", "SimplePolygon", "signed_area2", "is_simple_chain"]


class Location(Enum):
    """Result of locating a point relative to a region or polygon."""

    INTERIOR = "interior"
    BOUNDARY = "boundary"
    EXTERIOR = "exterior"


def signed_area2(vertices: Sequence[Point]) -> Fraction:
    """Twice the signed area of the polygon through *vertices*.

    Positive for counterclockwise orientation.
    """
    total = Fraction(0)
    n = len(vertices)
    for i in range(n):
        a, b = vertices[i], vertices[(i + 1) % n]
        total += a.cross(b)
    return total


def is_simple_chain(vertices: Sequence[Point]) -> bool:
    """True iff the closed chain through *vertices* is a simple polygon.

    Checks: at least 3 vertices, no repeated vertices, no zero-length or
    collinear-degenerate edges touching, and no two edges intersecting
    except consecutive edges at their shared endpoint.
    """
    n = len(vertices)
    if n < 3:
        return False
    if len(set(vertices)) != n:
        return False
    edges = [(vertices[i], vertices[(i + 1) % n]) for i in range(n)]
    for i in range(n):
        a, b = edges[i]
        if a == b:
            return False
        for j in range(i + 1, n):
            c, d = edges[j]
            adjacent = j == i + 1 or (i == 0 and j == n - 1)
            if adjacent:
                # Consecutive edges share exactly one endpoint; they must
                # not otherwise overlap (no collinear back-tracking).
                shared = b if b in (c, d) else a
                other1 = a if shared == b else b
                other2 = d if shared == c else c
                if collinear(other1, shared, other2) and (
                    on_segment(other1, shared, other2)
                    or on_segment(other2, shared, other1)
                ):
                    return False
                continue
            if segments_properly_intersect(a, b, c, d):
                return False
            # Any touching between non-adjacent edges breaks simplicity.
            if (
                on_segment(c, a, b)
                or on_segment(d, a, b)
                or on_segment(a, c, d)
                or on_segment(b, c, d)
            ):
                return False
    return True


@dataclass(frozen=True)
class SimplePolygon:
    """A simple polygon given by its cyclic vertex list.

    The constructor validates simplicity (override with
    ``validate=False`` when the caller has already checked) and
    normalizes orientation to counterclockwise.
    """

    vertices: tuple[Point, ...]
    _validated: bool = field(default=True, repr=False, compare=False)

    def __init__(self, vertices: Iterable[Point], validate: bool = True):
        verts = tuple(vertices)
        if validate and not is_simple_chain(verts):
            raise GeometryError(
                f"vertex chain of length {len(verts)} is not a simple polygon"
            )
        if signed_area2(verts) < 0:
            verts = tuple(reversed(verts))
        object.__setattr__(self, "vertices", verts)
        object.__setattr__(self, "_validated", validate)

    # -- basic measures ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.vertices)

    def area2(self) -> Fraction:
        """Twice the (positive) area."""
        return signed_area2(self.vertices)

    def edges(self) -> list[Segment]:
        n = len(self.vertices)
        return [
            Segment(self.vertices[i], self.vertices[(i + 1) % n])
            for i in range(n)
        ]

    def edge_pairs(self) -> list[tuple[Point, Point]]:
        """Directed edges as (tail, head) pairs, counterclockwise."""
        n = len(self.vertices)
        return [(self.vertices[i], self.vertices[(i + 1) % n]) for i in range(n)]

    # -- point location --------------------------------------------------------

    def locate(self, p: Point) -> Location:
        """Exact location of *p*: INTERIOR, BOUNDARY or EXTERIOR.

        Uses the crossing-number method on a horizontal leftward ray,
        handling vertex and edge-collinear cases exactly: an edge is
        counted iff it crosses the ray's y-level half-open in y
        (``min(y) <= p.y < max(y)``) strictly left of *p*.
        """
        for a, b in self.edge_pairs():
            if on_segment(p, a, b):
                return Location.BOUNDARY
        crossings = 0
        for a, b in self.edge_pairs():
            ya, yb = a.y, b.y
            if ya == yb:
                continue  # horizontal edges never satisfy the half-open test
            if min(ya, yb) <= p.y < max(ya, yb):
                # x-coordinate of the edge at height p.y
                t = (p.y - ya) / (yb - ya)
                x_at = a.x + (b.x - a.x) * t
                if x_at < p.x:
                    crossings += 1
        return Location.INTERIOR if crossings % 2 == 1 else Location.EXTERIOR

    def contains_interior(self, p: Point) -> bool:
        return self.locate(p) is Location.INTERIOR

    # -- derived points --------------------------------------------------------

    def interior_point(self) -> Point:
        """An exact point strictly inside the polygon.

        Classic construction: take the lexicographically smallest vertex
        *v* with neighbours *a*, *b*.  If no other vertex lies inside the
        closed triangle *avb*, its centroid is interior; otherwise take
        the inside vertex *q* maximizing distance from line *ab* and use
        the midpoint of *v* and *q*.
        """
        verts = self.vertices
        n = len(verts)
        i = min(range(n), key=lambda k: verts[k].lex_key())
        v = verts[i]
        a = verts[(i - 1) % n]
        b = verts[(i + 1) % n]
        # v is convex (it is extreme), so triangle a-v-b locally covers
        # the interior angle at v.
        inside: list[Point] = []
        for q in verts:
            if q in (a, v, b):
                continue
            if _in_closed_triangle(q, a, v, b):
                inside.append(q)
        if not inside:
            c = Point(
                (a.x + v.x + b.x) / 3,
                (a.y + v.y + b.y) / 3,
            )
            if self.locate(c) is Location.INTERIOR:
                return c
            # Extremely flat triangle: fall back to nudging toward the
            # midpoint of a-b, halving until interior.
            target = midpoint(a, b)
            return self._walk_inward(v, target)
        # Farthest from line a-b (maximize |cross| which is proportional
        # to distance).
        q = max(inside, key=lambda p: abs((b - a).cross(p - a)))
        candidate = midpoint(v, q)
        if self.locate(candidate) is Location.INTERIOR:
            return candidate
        return self._walk_inward(v, q)

    def _walk_inward(self, start: Point, toward: Point) -> Point:
        """Binary-search along *start→toward* for an interior point."""
        t = Fraction(1, 2)
        for _ in range(64):
            p = Point(
                start.x + (toward.x - start.x) * t,
                start.y + (toward.y - start.y) * t,
            )
            if self.locate(p) is Location.INTERIOR:
                return p
            t /= 2
        raise GeometryError("failed to find an interior point")

    def reversed(self) -> "SimplePolygon":
        return SimplePolygon(tuple(reversed(self.vertices)), validate=False)

    def translated(self, dx, dy) -> "SimplePolygon":
        from .point import Q

        dxq, dyq = Q(dx), Q(dy)
        return SimplePolygon(
            tuple(Point(p.x + dxq, p.y + dyq) for p in self.vertices),
            validate=False,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimplePolygon({len(self.vertices)} vertices)"


def _in_closed_triangle(p: Point, a: Point, b: Point, c: Point) -> bool:
    """True iff *p* lies in the closed triangle *abc* (any orientation)."""
    o1 = orientation(a, b, p)
    o2 = orientation(b, c, p)
    o3 = orientation(c, a, p)
    has_neg = -1 in (o1, o2, o3)
    has_pos = 1 in (o1, o2, o3)
    return not (has_neg and has_pos)
