"""Exact rotational ordering of direction vectors.

The arrangement engine needs to sort the edges leaving a vertex by angle
(the *rotation system* of the embedded graph) without ever computing an
actual angle, which would be irrational.  :func:`pseudo_angle_key` returns
a key that sorts directions counterclockwise starting from the positive
x-axis, using only exact rational comparisons.

The key is ``(halfplane, slope_proxy)`` where *halfplane* splits directions
into upper (including +x axis) and lower (including -x axis) halves, and
within a half-plane directions are ordered by the exact comparison
``d1 x d2 > 0`` (cross product), which is a total order there.  To make
that usable as a sort key we use the tangent-like ratio with careful
handling of the vertical direction.
"""

from __future__ import annotations

import functools
from fractions import Fraction

from .point import Point

__all__ = ["direction_compare", "ccw_sorted", "pseudo_angle_class"]


def pseudo_angle_class(d: Point) -> int:
    """Index of the half-open "octant-free" angular class of direction *d*.

    Classes, counterclockwise: 0 = positive x-axis, 1 = open upper
    half-plane, 2 = negative x-axis, 3 = open lower half-plane.
    """
    if d.x == 0 and d.y == 0:
        raise ValueError("zero direction vector has no angle")
    if d.y == 0:
        return 0 if d.x > 0 else 2
    return 1 if d.y > 0 else 3


def direction_compare(d1: Point, d2: Point) -> int:
    """Exact three-way comparison of directions by CCW angle from +x axis.

    Returns -1, 0, or +1.  Two directions compare equal iff they are
    positive multiples of each other.
    """
    c1, c2 = pseudo_angle_class(d1), pseudo_angle_class(d2)
    if c1 != c2:
        return -1 if c1 < c2 else 1
    cross = d1.cross(d2)
    if cross > 0:
        return -1
    if cross < 0:
        return 1
    return 0


def ccw_sorted(directions: list[Point]) -> list[Point]:
    """Sort direction vectors counterclockwise from the positive x-axis."""
    return sorted(directions, key=functools.cmp_to_key(direction_compare))


def angle_sort_key(d: Point) -> tuple[int, Fraction]:
    """A plain sort key equivalent to :func:`direction_compare`.

    Within the upper half-plane directions are ordered by decreasing
    ``x/y`` (cotangent decreases as angle grows from 0 to pi); within the
    lower half-plane likewise.  The axis classes carry a constant second
    component.
    """
    cls = pseudo_angle_class(d)
    if cls in (0, 2):
        return (cls, Fraction(0))
    # For cls 1 (y > 0) and cls 3 (y < 0): angle grows as x/y decreases.
    return (cls, -Fraction(d.x, 1) / Fraction(d.y, 1))
