"""Axis-aligned bounding boxes over rational coordinates."""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable

from ..errors import GeometryError
from .point import Point

__all__ = ["BBox"]


@dataclass(frozen=True, slots=True)
class BBox:
    """A closed axis-aligned box ``[xmin, xmax] x [ymin, ymax]``."""

    xmin: Fraction
    ymin: Fraction
    xmax: Fraction
    ymax: Fraction

    def __post_init__(self):
        if self.xmin > self.xmax or self.ymin > self.ymax:
            raise GeometryError(f"empty bounding box {self!r}")

    @staticmethod
    def of_points(points: Iterable[Point]) -> "BBox":
        pts = list(points)
        if not pts:
            raise GeometryError("bounding box of an empty point set")
        return BBox(
            min(p.x for p in pts),
            min(p.y for p in pts),
            max(p.x for p in pts),
            max(p.y for p in pts),
        )

    def contains(self, p: Point) -> bool:
        return self.xmin <= p.x <= self.xmax and self.ymin <= p.y <= self.ymax

    def intersects(self, other: "BBox") -> bool:
        return not (
            self.xmax < other.xmin
            or other.xmax < self.xmin
            or self.ymax < other.ymin
            or other.ymax < self.ymin
        )

    def union(self, other: "BBox") -> "BBox":
        return BBox(
            min(self.xmin, other.xmin),
            min(self.ymin, other.ymin),
            max(self.xmax, other.xmax),
            max(self.ymax, other.ymax),
        )

    def expanded(self, margin) -> "BBox":
        from .point import Q

        m = Q(margin)
        return BBox(self.xmin - m, self.ymin - m, self.xmax + m, self.ymax + m)

    @property
    def width(self) -> Fraction:
        return self.xmax - self.xmin

    @property
    def height(self) -> Fraction:
        return self.ymax - self.ymin

    def center(self) -> Point:
        half = Fraction(1, 2)
        return Point((self.xmin + self.xmax) * half, (self.ymin + self.ymax) * half)

    def corners(self) -> tuple[Point, Point, Point, Point]:
        """Corners in counterclockwise order starting at (xmin, ymin)."""
        return (
            Point(self.xmin, self.ymin),
            Point(self.xmax, self.ymin),
            Point(self.xmax, self.ymax),
            Point(self.xmin, self.ymax),
        )
