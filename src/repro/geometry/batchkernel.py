"""Numpy-batched float filters for segment-pair classification.

:mod:`repro.geometry.fastkernel` certifies predicate signs one call at a
time; when the arrangement sweep has collected thousands of candidate
segment pairs, the per-call Python overhead dwarfs the float arithmetic.
This module evaluates the same filters — identical error bounds,
identical certification rules — over ``(N, 4)`` arrays of segment
endpoints in a handful of vector operations, and returns a *verdict
array*:

``BBOX_REJECT``
    The float bounding boxes are strictly disjoint.  ``float(Fraction)``
    is correctly rounded, hence monotone, so a strict ``<`` between
    rounded coordinates certifies the same strict inequality between the
    exact coordinates: the segments cannot touch.  No error bound is
    needed; ties stay uncertified.
``CERT_NONE``
    Both endpoints of one segment lie certified strictly on one side of
    the other's supporting line (the certified orientation signs carry
    the same ``32u * M`` forward-error bound as the scalar filter).
``CERT_CROSS``
    All four orientations are certified and strictly straddling: a
    proper crossing whose exact parameter lies in (0, 1).  The caller
    completes it with the exact rational crossing point — the same
    formula as both scalar kernels, so the ``Point`` is bit-identical.
``AMBIGUOUS``
    Everything else: any uncertified sign, any exact degeneracy
    (endpoint contact, T-junction, collinear overlap), float overflow.
    These pairs must be delegated to
    :func:`repro.geometry.fastkernel.segment_intersection`, which
    resolves them exactly (and keeps its own counters).

The contract mirrors the scalar filter's: a verdict other than
``AMBIGUOUS`` is a *proof*, never a guess, so batched consumers remain
bit-identical to the seed kernel.  Coordinates too large for ``float``
make :func:`segments_to_array` return ``None`` and the caller falls back
to the scalar path wholesale.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from . import fastkernel
from .fastkernel import _ORIENT_COEFF, counters
from .point import Point
from .segment import Segment

__all__ = [
    "AMBIGUOUS",
    "BBOX_REJECT",
    "CERT_NONE",
    "CERT_CROSS",
    "classify_pairs",
    "classify_pairs_counted",
    "crossing_point",
    "orientation_filter",
    "points_to_array",
    "segment_intersections",
    "segments_to_array",
]

AMBIGUOUS = 0
BBOX_REJECT = 1
CERT_NONE = 2
CERT_CROSS = 3


def segments_to_array(segs: Sequence[Segment]) -> np.ndarray | None:
    """Rounded endpoint coordinates as an ``(N, 4)`` float array.

    Columns are ``(a.x, a.y, b.x, b.y)``.  Returns ``None`` when any
    coordinate overflows ``float`` — the caller must then use the scalar
    kernel for every pair involving that batch.
    """
    out = np.empty((len(segs), 4), dtype=np.float64)
    try:
        for i, s in enumerate(segs):
            out[i, 0] = float(s.a.x)
            out[i, 1] = float(s.a.y)
            out[i, 2] = float(s.b.x)
            out[i, 3] = float(s.b.y)
    except OverflowError:
        return None
    return out


def points_to_array(points: Sequence[Point]) -> np.ndarray | None:
    """Rounded point coordinates as an ``(N, 2)`` float array, or ``None``."""
    out = np.empty((len(points), 2), dtype=np.float64)
    try:
        for i, p in enumerate(points):
            out[i, 0] = float(p.x)
            out[i, 1] = float(p.y)
    except OverflowError:
        return None
    return out


def orientation_filter(
    ax: np.ndarray,
    ay: np.ndarray,
    bx: np.ndarray,
    by: np.ndarray,
    cx: np.ndarray,
    cy: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized orientation filter: ``(signs, certified)``.

    ``signs[i]`` is the certified sign of ``orientation(a_i, b_i, c_i)``
    where ``certified[i]`` is true, and meaningless elsewhere.  The
    bound is exactly the scalar filter's ``32u * M``; NaN/inf from
    intermediate overflow fail both comparisons and stay uncertified.
    """
    det = (ax - cx) * (by - cy) - (ay - cy) * (bx - cx)
    err = _ORIENT_COEFF * (
        (np.abs(ax) + np.abs(cx)) * (np.abs(by) + np.abs(cy))
        + (np.abs(ay) + np.abs(cy)) * (np.abs(bx) + np.abs(cx))
    )
    pos = det > err
    neg = det < -err
    return pos.astype(np.int8) - neg.astype(np.int8), pos | neg


def classify_pairs(P: np.ndarray, Q: np.ndarray) -> np.ndarray:
    """Verdict array for the segment pairs ``(P[i], Q[i])``.

    *P* and *Q* are ``(N, 4)`` arrays as built by
    :func:`segments_to_array` (row order ``a.x, a.y, b.x, b.y``;
    endpoints need not be lex-sorted).  Returns an ``(N,)`` int8 array
    of ``BBOX_REJECT`` / ``CERT_NONE`` / ``CERT_CROSS`` / ``AMBIGUOUS``.
    """
    with np.errstate(over="ignore", invalid="ignore"):
        bbox = (
            (np.maximum(P[:, 0], P[:, 2]) < np.minimum(Q[:, 0], Q[:, 2]))
            | (np.maximum(Q[:, 0], Q[:, 2]) < np.minimum(P[:, 0], P[:, 2]))
            | (np.maximum(P[:, 1], P[:, 3]) < np.minimum(Q[:, 1], Q[:, 3]))
            | (np.maximum(Q[:, 1], Q[:, 3]) < np.minimum(P[:, 1], P[:, 3]))
        )
        s1, c1 = orientation_filter(
            P[:, 0], P[:, 1], P[:, 2], P[:, 3], Q[:, 0], Q[:, 1]
        )
        s2, c2 = orientation_filter(
            P[:, 0], P[:, 1], P[:, 2], P[:, 3], Q[:, 2], Q[:, 3]
        )
        s3, c3 = orientation_filter(
            Q[:, 0], Q[:, 1], Q[:, 2], Q[:, 3], P[:, 0], P[:, 1]
        )
        s4, c4 = orientation_filter(
            Q[:, 0], Q[:, 1], Q[:, 2], Q[:, 3], P[:, 2], P[:, 3]
        )
    # Certified signs are nonzero by construction, so "same certified
    # sign" means "strictly one side" and "different certified signs"
    # means "strictly straddles".
    none = (c1 & c2 & (s1 == s2)) | (c3 & c4 & (s3 == s4))
    cross = c1 & c2 & c3 & c4 & (s1 != s2) & (s3 != s4)
    verdicts = np.zeros(len(P), dtype=np.int8)
    verdicts[cross] = CERT_CROSS
    verdicts[none] = CERT_NONE
    verdicts[bbox] = BBOX_REJECT
    return verdicts


def classify_pairs_counted(P: np.ndarray, Q: np.ndarray) -> np.ndarray:
    """:func:`classify_pairs` plus counter accounting.

    Certified verdicts are counted here (``intersect_bbox_reject`` for
    bbox rejects, ``intersect_fast`` for the rest), matching what the
    scalar kernel would have recorded pair-by-pair.  ``AMBIGUOUS`` pairs
    are *not* counted — the scalar fallback call the caller makes for
    them does its own accounting.
    """
    verdicts = classify_pairs(P, Q)
    n = len(verdicts)
    n_bbox = int(np.count_nonzero(verdicts == BBOX_REJECT))
    n_cert = int(
        np.count_nonzero(verdicts == CERT_NONE)
        + np.count_nonzero(verdicts == CERT_CROSS)
    )
    counters.batch_pairs += n
    counters.batch_certified += n_bbox + n_cert
    counters.batch_fallback += n - n_bbox - n_cert
    counters.intersect_bbox_reject += n_bbox
    counters.intersect_fast += n_cert
    return verdicts


def crossing_point(a: Point, b: Point, c: Point, d: Point) -> tuple[str, Point]:
    """Exact intersection of two segments certified as properly crossing.

    Same formula as the fast and exact scalar kernels, so the resulting
    ``Point`` is bit-identical to theirs.  Only valid under a
    ``CERT_CROSS`` verdict (the lines provably meet at parameter
    strictly inside both segments).
    """
    r = b - a
    s = d - c
    denom = r.cross(s)
    t = (c - a).cross(s) / denom
    return ("point", Point(a.x + r.x * t, a.y + r.y * t))


def segment_intersections(
    segs_a: Sequence[Segment], segs_b: Sequence[Segment]
) -> list[tuple[str, object]]:
    """Batched drop-in for pairwise ``fastkernel.segment_intersection``.

    ``result[i] == fastkernel.segment_intersection(*segs_a[i], *segs_b[i])``
    for every *i*, bit for bit.  Certified pairs never touch rational
    arithmetic except to build the exact crossing point; ambiguous pairs
    (and the whole batch under :func:`~repro.geometry.fastkernel.exact_mode`
    or float overflow) delegate to the scalar kernel.
    """
    n = len(segs_a)
    if n != len(segs_b):
        raise ValueError("segs_a and segs_b must have equal length")
    P = Q = None
    if fastkernel.filter_enabled():
        P = segments_to_array(segs_a)
        Q = segments_to_array(segs_b) if P is not None else None
    if Q is None:
        return [
            fastkernel.segment_intersection(s.a, s.b, t.a, t.b)
            for s, t in zip(segs_a, segs_b)
        ]
    verdicts = classify_pairs_counted(P, Q)
    results: list[tuple[str, object]] = [("none", None)] * n
    for i in np.flatnonzero(verdicts == CERT_CROSS).tolist():
        s, t = segs_a[i], segs_b[i]
        results[i] = crossing_point(s.a, s.b, t.a, t.b)
    for i in np.flatnonzero(verdicts == AMBIGUOUS).tolist():
        s, t = segs_a[i], segs_b[i]
        results[i] = fastkernel.segment_intersection(s.a, s.b, t.a, t.b)
    return results
