"""Exact geometric predicates over rational points.

These are the primitives every other geometric computation reduces to.
Because coordinates are :class:`fractions.Fraction`, each predicate returns
a mathematically exact answer; there is no epsilon anywhere in the kernel.
"""

from __future__ import annotations

from fractions import Fraction

from .point import Point

__all__ = [
    "orientation",
    "collinear",
    "on_segment",
    "strictly_between",
    "segments_properly_intersect",
    "segment_intersection",
]


def orientation(a: Point, b: Point, c: Point) -> int:
    """Sign of the signed area of triangle *abc*.

    Returns ``+1`` if *c* lies to the left of the directed line *a→b*
    (counterclockwise turn), ``-1`` if to the right (clockwise), ``0`` if
    the three points are collinear.
    """
    cross = (b - a).cross(c - a)
    if cross > 0:
        return 1
    if cross < 0:
        return -1
    return 0


def collinear(a: Point, b: Point, c: Point) -> bool:
    """True iff the three points lie on one line."""
    return orientation(a, b, c) == 0


def on_segment(p: Point, a: Point, b: Point) -> bool:
    """True iff *p* lies on the closed segment *ab* (endpoints included)."""
    if not collinear(a, b, p):
        return False
    return (
        min(a.x, b.x) <= p.x <= max(a.x, b.x)
        and min(a.y, b.y) <= p.y <= max(a.y, b.y)
    )


def strictly_between(p: Point, a: Point, b: Point) -> bool:
    """True iff *p* lies on the open segment *ab* (endpoints excluded)."""
    return on_segment(p, a, b) and p != a and p != b


def segments_properly_intersect(a: Point, b: Point, c: Point, d: Point) -> bool:
    """True iff open segments *ab* and *cd* cross at a single interior point.

    Proper intersection excludes shared endpoints, T-junctions and overlaps.
    """
    o1 = orientation(a, b, c)
    o2 = orientation(a, b, d)
    o3 = orientation(c, d, a)
    o4 = orientation(c, d, b)
    return o1 * o2 < 0 and o3 * o4 < 0


def _line_intersection(a: Point, b: Point, c: Point, d: Point) -> Point | None:
    """Intersection point of the (infinite) lines *ab* and *cd*.

    Returns ``None`` when the lines are parallel (including coincident).
    """
    r = b - a
    s = d - c
    denom = r.cross(s)
    if denom == 0:
        return None
    t = (c - a).cross(s) / denom
    return Point(a.x + r.x * t, a.y + r.y * t)


def segment_intersection(
    a: Point, b: Point, c: Point, d: Point
) -> tuple[str, object]:
    """Classify the intersection of closed segments *ab* and *cd*.

    Returns a pair ``(kind, payload)`` where *kind* is one of:

    ``"none"``
        Disjoint segments; payload is ``None``.
    ``"point"``
        They meet in exactly one point; payload is that :class:`Point`
        (possibly an endpoint of either segment).
    ``"overlap"``
        They are collinear and share a nondegenerate subsegment; payload
        is the ``(Point, Point)`` pair of that subsegment's endpoints in
        lexicographic order.
    """
    # Disjoint bounding boxes admit no contact of any kind; the exact
    # coordinate comparisons are far cheaper than the cross products.
    if (
        max(a.x, b.x) < min(c.x, d.x)
        or max(c.x, d.x) < min(a.x, b.x)
        or max(a.y, b.y) < min(c.y, d.y)
        or max(c.y, d.y) < min(a.y, b.y)
    ):
        return ("none", None)
    r = b - a
    s = d - c
    denom = r.cross(s)
    if denom == 0:
        # Parallel.  Collinear overlap is the only possible contact.
        if orientation(a, b, c) != 0:
            return ("none", None)
        lo1, hi1 = (a, b) if a <= b else (b, a)
        lo2, hi2 = (c, d) if c <= d else (d, c)
        lo = lo1 if lo2 <= lo1 else lo2
        hi = hi1 if hi1 <= hi2 else hi2
        if hi < lo:
            return ("none", None)
        if lo == hi:
            return ("point", lo)
        return ("overlap", (lo, hi))
    t = (c - a).cross(s) / denom
    u = (c - a).cross(r) / denom
    if 0 <= t <= 1 and 0 <= u <= 1:
        return ("point", Point(a.x + r.x * t, a.y + r.y * t))
    return ("none", None)
