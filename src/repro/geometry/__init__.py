"""Exact rational 2-D geometric kernel.

Everything downstream of this package — regions, arrangements, invariants —
computes over :class:`fractions.Fraction` coordinates, so all predicates
are exact.  See :mod:`repro.geometry.point` for the coercion rules.
"""

from . import batchkernel, fastkernel
from .angle import ccw_sorted, direction_compare, pseudo_angle_class
from .bbox import BBox
from .point import Point, Q, centroid, interpolate, midpoint
from .polygon import Location, SimplePolygon, is_simple_chain, signed_area2
from .predicates import (
    collinear,
    on_segment,
    orientation,
    segment_intersection,
    segments_properly_intersect,
    strictly_between,
)
from .segment import Segment

__all__ = [
    "BBox",
    "Location",
    "Point",
    "Q",
    "Segment",
    "SimplePolygon",
    "ccw_sorted",
    "centroid",
    "collinear",
    "direction_compare",
    "fastkernel",
    "interpolate",
    "is_simple_chain",
    "midpoint",
    "on_segment",
    "orientation",
    "pseudo_angle_class",
    "segment_intersection",
    "segments_properly_intersect",
    "signed_area2",
    "strictly_between",
]
