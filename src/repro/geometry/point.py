"""Exact rational points and vectors in the plane.

All geometry in this library is carried out over the rationals using
:class:`fractions.Fraction`, so every predicate downstream (orientation,
intersection, point location) is decided exactly.  The :func:`Q` helper
coerces ints, floats, strings and Fractions to ``Fraction``; floats are
converted via ``Fraction(str(value))`` so that ``Q(0.1)`` means 1/10 rather
than the binary-float neighbour of 1/10.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Union

Rational = Union[int, float, str, Fraction]


def Q(value: Rational) -> Fraction:
    """Coerce *value* to an exact :class:`~fractions.Fraction`.

    Floats are interpreted via their decimal representation (``str``),
    which matches user intent for literals like ``0.25``.
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        return Fraction(str(value))
    if isinstance(value, str):
        return Fraction(value)
    raise TypeError(f"cannot interpret {value!r} as a rational number")


@dataclass(frozen=True, slots=True)
class Point:
    """A point of the rational plane Q^2.

    Points are immutable and hashable, so they can serve as dictionary
    keys inside the arrangement engine (vertices are deduplicated by
    exact coordinate equality).
    """

    x: Fraction
    y: Fraction

    def __init__(self, x: Rational, y: Rational):
        object.__setattr__(self, "x", Q(x))
        object.__setattr__(self, "y", Q(y))

    # -- vector arithmetic -------------------------------------------------

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: Rational) -> "Point":
        s = Q(scalar)
        return Point(self.x * s, self.y * s)

    __rmul__ = __mul__

    def __neg__(self) -> "Point":
        return Point(-self.x, -self.y)

    # -- products ----------------------------------------------------------

    def cross(self, other: "Point") -> Fraction:
        """2-D cross product ``self.x * other.y - self.y * other.x``."""
        return self.x * other.y - self.y * other.x

    def dot(self, other: "Point") -> Fraction:
        return self.x * other.x + self.y * other.y

    def norm2(self) -> Fraction:
        """Squared Euclidean norm (exact; the norm itself may be irrational)."""
        return self.x * self.x + self.y * self.y

    # -- ordering ----------------------------------------------------------

    def lex_key(self) -> tuple[Fraction, Fraction]:
        """Lexicographic (x, y) sort key."""
        return (self.x, self.y)

    def __lt__(self, other: "Point") -> bool:
        return self.lex_key() < other.lex_key()

    def __le__(self, other: "Point") -> bool:
        return self.lex_key() <= other.lex_key()

    # -- misc ----------------------------------------------------------------

    def as_float(self) -> tuple[float, float]:
        """Approximate float coordinates (for plotting / numeric output)."""
        return (float(self.x), float(self.y))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Point({self.x}, {self.y})"


def midpoint(a: Point, b: Point) -> Point:
    """The exact midpoint of segment *ab*."""
    half = Fraction(1, 2)
    return Point((a.x + b.x) * half, (a.y + b.y) * half)


def interpolate(a: Point, b: Point, t: Rational) -> Point:
    """The point ``a + t*(b-a)`` for rational parameter *t*."""
    tq = Q(t)
    return Point(a.x + (b.x - a.x) * tq, a.y + (b.y - a.y) * tq)


def centroid(points: list[Point]) -> Point:
    """Arithmetic mean of a nonempty list of points."""
    if not points:
        raise ValueError("centroid of an empty point list")
    n = Fraction(len(points))
    sx = sum((p.x for p in points), Fraction(0))
    sy = sum((p.y for p in points), Fraction(0))
    return Point(sx / n, sy / n)
