"""Float-filtered exact geometric predicates (the fast kernel).

The seed kernel in :mod:`repro.geometry.predicates` decides every
predicate over :class:`fractions.Fraction` arithmetic.  That is exact but
pays rational-normalization (gcd) cost on every cross product, even
though the overwhelming majority of predicate calls in a non-degenerate
arrangement are decided by a sign that a double-precision evaluation gets
right by a wide margin.

This module puts a *static floating-point filter* in front of the exact
predicates, in the style of Shewchuk's adaptive predicates and the
interval filters of CGAL-like kernels:

* the predicate is first evaluated in double precision on the rounded
  coordinates;
* a conservative forward-error bound for that evaluation is computed
  from the operand magnitudes;
* if the float result clears the bound, its **sign is certified** and is
  returned with no rational arithmetic at all;
* otherwise (near-degenerate or genuinely degenerate input, or float
  overflow) the call **falls back to the exact rational predicate**.

The filter therefore never changes an answer — it only answers when the
error bound proves the sign — so every consumer remains exact.  The
only observable difference is speed, plus the module-level
:data:`counters` which record filter hits vs exact fallbacks; the batch
pipeline snapshots them through :func:`repro.instrument.counter_snapshot`
into :class:`~repro.pipeline.stats.PipelineStats`.

Error bound
-----------
``orientation`` reduces to the sign of the 2x2 determinant
``D = (ax-cx)(by-cy) - (ay-cy)(bx-cx)``.  Evaluating it in doubles from
correctly rounded inputs (``float(Fraction)`` rounds to nearest, so each
input carries relative error <= u = 2^-53), a standard forward-error
analysis gives

    |D_float - D| <= ~6u * M,   M = (|ax|+|cx|)(|by|+|cy|) + (|ay|+|cy|)(|bx|+|cx|)

(conversion of each operand, one rounded subtraction per difference, one
rounded multiplication per term, one rounded final subtraction).  We use
the coefficient ``16 * 2^-52 = 32u``, more than five times the proven
bound, so the certificate holds with a wide margin.  When the inputs are
too large to convert to ``float`` (OverflowError) or the bound is not
cleared (including NaN propagation), the exact predicate decides.

Counters are plain attribute increments on a module singleton: cheap,
always on, and approximate under the threads backend (a lost increment
is acceptable for statistics; correctness never depends on them).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from .point import Point
from . import predicates as _exact

__all__ = [
    "KernelCounters",
    "counters",
    "exact_mode",
    "filter_enabled",
    "on_segment",
    "orientation",
    "segment_intersection",
]

# 2^-52; the per-call bound uses 16 * _EPS * M = 32u * M (see module doc).
_EPS = 2.220446049250313e-16
_ORIENT_COEFF = 16.0 * _EPS


class KernelCounters:
    """Filter hits vs exact fallbacks, per predicate family.

    ``orientation_fast`` / ``orientation_exact``
        Orientation signs certified by the float filter vs decided by
        rational arithmetic (degenerate, near-degenerate, or overflow).
    ``intersect_fast`` / ``intersect_exact`` / ``intersect_bbox_reject``
        Segment-intersection classifications answered by the filtered
        path, delegated to the exact classifier, and rejected outright
        by the bounding-box prescreen.
    ``planarize_pairs_tested`` / ``planarize_pairs_pruned``
        Candidate segment pairs classified (or delegated to the scalar
        kernel) by the sweep planarizer vs pairs rejected outright by
        its bounding-box prescreen — the batched vector test on the
        default path, the y-interval check on the scalar fallback path
        (pairs separated in x never even meet in the active set).
    ``batch_pairs`` / ``batch_certified`` / ``batch_fallback``
        Segment pairs classified by the vectorized batch kernel
        (:mod:`repro.geometry.batchkernel`): total pairs, pairs whose
        verdict the float filter certified in-batch, and ambiguous
        pairs delegated to the scalar kernel (which also counts them
        under the ``intersect_*`` / ``orientation_*`` families).
    """

    __slots__ = (
        "orientation_fast",
        "orientation_exact",
        "intersect_fast",
        "intersect_exact",
        "intersect_bbox_reject",
        "planarize_pairs_tested",
        "planarize_pairs_pruned",
        "batch_pairs",
        "batch_certified",
        "batch_fallback",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def snapshot(self) -> dict[str, int]:
        """Current values under ``kernel.``-prefixed names."""
        return {f"kernel.{name}": getattr(self, name) for name in self.__slots__}

    def filter_hit_rate(self) -> float:
        """Fraction of predicate calls answered without exact fallback.

        Covers the orientation and intersection families (bbox rejects
        count as filtered answers); 0.0 when nothing has run.
        """
        fast = (
            self.orientation_fast
            + self.intersect_fast
            + self.intersect_bbox_reject
        )
        total = fast + self.orientation_exact + self.intersect_exact
        return fast / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(
            f"{name}={getattr(self, name)}" for name in self.__slots__
        )
        return f"KernelCounters({inner})"


counters = KernelCounters()

_filter_enabled = True


def filter_enabled() -> bool:
    """Whether the float prescreen is active (see :func:`exact_mode`)."""
    return _filter_enabled


@contextmanager
def exact_mode() -> Iterator[None]:
    """Disable the float filter for the block (A/B and debugging aid).

    Inside the block every predicate goes straight to the exact rational
    kernel, which is the seed behaviour.  Results are identical either
    way — this only exists so tests and benchmarks can compare the two
    paths.  The flag is module-global, so don't wrap it around work that
    races with the threads backend.
    """
    global _filter_enabled
    prev = _filter_enabled
    _filter_enabled = False
    try:
        yield
    finally:
        _filter_enabled = prev


def orientation(a: Point, b: Point, c: Point) -> int:
    """Exact sign of the signed area of triangle *abc*, filter-first.

    Semantically identical to :func:`repro.geometry.predicates.orientation`.
    """
    if _filter_enabled:
        try:
            axf, ayf = float(a.x), float(a.y)
            bxf, byf = float(b.x), float(b.y)
            cxf, cyf = float(c.x), float(c.y)
        except OverflowError:
            pass
        else:
            det = (axf - cxf) * (byf - cyf) - (ayf - cyf) * (bxf - cxf)
            err = _ORIENT_COEFF * (
                (abs(axf) + abs(cxf)) * (abs(byf) + abs(cyf))
                + (abs(ayf) + abs(cyf)) * (abs(bxf) + abs(cxf))
            )
            # NaN/overflow in det or err fails both comparisons and
            # falls through to the exact path.
            if det > err:
                counters.orientation_fast += 1
                return 1
            if det < -err:
                counters.orientation_fast += 1
                return -1
    counters.orientation_exact += 1
    return _exact.orientation(a, b, c)


def on_segment(p: Point, a: Point, b: Point) -> bool:
    """True iff *p* lies on the closed segment *ab* (filtered-exact).

    Identical to :func:`repro.geometry.predicates.on_segment`; the
    non-collinear common case is rejected by the filtered orientation.
    """
    if orientation(a, b, p) != 0:
        return False
    return (
        min(a.x, b.x) <= p.x <= max(a.x, b.x)
        and min(a.y, b.y) <= p.y <= max(a.y, b.y)
    )


def segment_intersection(
    a: Point, b: Point, c: Point, d: Point
) -> tuple[str, object]:
    """Classify the intersection of closed segments *ab* and *cd*.

    Drop-in filtered equivalent of
    :func:`repro.geometry.predicates.segment_intersection`: identical
    return values on every input.  The fast path answers the two common
    cases — certified disjoint and certified proper crossing — from
    filtered orientation signs; anything involving a zero orientation
    (endpoint contact, T-junction, collinearity) or an uncertified sign
    delegates to the exact classifier.
    """
    if not _filter_enabled:
        counters.intersect_exact += 1
        return _exact.segment_intersection(a, b, c, d)
    # Bounding-box prescreen: exact rational comparisons, no allocation.
    if (
        max(a.x, b.x) < min(c.x, d.x)
        or max(c.x, d.x) < min(a.x, b.x)
        or max(a.y, b.y) < min(c.y, d.y)
        or max(c.y, d.y) < min(a.y, b.y)
    ):
        counters.intersect_bbox_reject += 1
        return ("none", None)
    # Vertex contact: adjacent polygon edges share an endpoint, which is
    # extremely common and would otherwise force an exact fallback (one
    # of the four orientations is an exact zero).  If the two remaining
    # endpoints are certified non-collinear with the shared one, the
    # lines are distinct and both pass through the shared point, so it
    # is the unique intersection (the exact classifier returns the same
    # value: t or u is exactly 0 or 1 there).  Collinear or uncertified
    # configurations (overlap along the shared line) fall through.
    if a == c or a == d:
        shared, p1, p2 = a, b, (d if a == c else c)
    elif b == c or b == d:
        shared, p1, p2 = b, a, (d if b == c else c)
    else:
        shared = None
    if shared is not None:
        if orientation(shared, p1, p2) != 0:
            counters.intersect_fast += 1
            return ("point", shared)
        counters.intersect_exact += 1
        return _exact.segment_intersection(a, b, c, d)
    o1 = orientation(a, b, c)
    o2 = orientation(a, b, d)
    if o1 == o2 and o1 != 0:
        # c and d strictly on one side of line ab: no contact.
        counters.intersect_fast += 1
        return ("none", None)
    o3 = orientation(c, d, a)
    o4 = orientation(c, d, b)
    if o3 == o4 and o3 != 0:
        counters.intersect_fast += 1
        return ("none", None)
    if o1 * o2 < 0 and o3 * o4 < 0:
        # Proper crossing: the segments strictly straddle each other, so
        # the lines cannot be parallel and the parameter lies in (0, 1).
        # Same formula as the exact kernel, so the Point is identical.
        counters.intersect_fast += 1
        r = b - a
        s = d - c
        denom = r.cross(s)
        t = (c - a).cross(s) / denom
        return ("point", Point(a.x + r.x * t, a.y + r.y * t))
    counters.intersect_exact += 1
    return _exact.segment_intersection(a, b, c, d)


# Publish the counters to the instrumentation layer so PipelineStats can
# snapshot them without importing geometry internals.
from ..instrument import add_counter_source  # noqa: E402  (import cycle-free)

add_counter_source(counters.snapshot)
