"""Curved maps stored as polygons (the spatial representation problem).

Theorem 3.5: for topological purposes, semi-algebraic regions can always
be replaced by polygonal ones.  This example builds a "medical imaging"
style instance of curved regions (circles and ellipses: a cross-section
with organs and a lesion), computes its invariant, derives a *polygonal
representative* via realization, and confirms that every topological
question — relations, queries, equivalence — is preserved.  The
polygonal map is finally serialized to JSON and read back losslessly.

Run:  python examples/polygonal_representation.py
"""

from repro import AlgRegion, SpatialInstance, invariant
from repro.fourint import relation_table
from repro.invariant import are_isomorphic, realize
from repro.io import instance_from_json, instance_to_json
from repro.logic import evaluate_cells, parse


def build_scan() -> SpatialInstance:
    body = AlgRegion.ellipse(0, 0, 20, 12, n=24)
    left_organ = AlgRegion.circle(-8, 0, 5, n=16)
    right_organ = AlgRegion.ellipse(8, 1, 6, 4, n=16)
    lesion = AlgRegion.circle(-8, 2, 2, n=12)
    return SpatialInstance(
        {
            "Body": body,
            "LeftOrgan": left_organ,
            "RightOrgan": right_organ,
            "Lesion": lesion,
        }
    )


def main() -> None:
    scan = build_scan()
    print("curved instance:", scan)

    t = invariant(scan)
    print("invariant (V, E, F):", t.counts())

    print("\n== curved-region relations ==")
    table = relation_table(scan)
    names = scan.names()
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            print(f"  {a:10s} {table[(a, b)].value:10s} {b}")

    print("\n== polygonal representative (Theorem 3.5) ==")
    polygonal = realize(t)
    t_poly = invariant(polygonal)
    print("  same invariant:", are_isomorphic(t, t_poly))
    total_segments = sum(
        len(polygonal.ext(n).boundary_segments())
        for n in polygonal.names()
    )
    print(f"  polygonal boundary segments: {total_segments}")

    print("\n== queries agree on both representations ==")
    queries = {
        "the lesion sits inside the left organ":
            "subset(Lesion, LeftOrgan)",
        "the organs are separated":
            "not (exists r . subset(r, LeftOrgan) and subset(r, RightOrgan))",
        "everything is inside the body":
            "subset(LeftOrgan, Body) and subset(RightOrgan, Body) "
            "and subset(Lesion, Body)",
    }
    for description, text in queries.items():
        on_curved = evaluate_cells(parse(text), scan)
        on_polygonal = evaluate_cells(parse(text), polygonal)
        marker = "==" if on_curved == on_polygonal else "!= (BUG)"
        print(f"  {description}: {on_curved} {marker} {on_polygonal}")

    print("\n== lossless serialization ==")
    text = instance_to_json(scan)
    back = instance_from_json(text)
    print(
        "  JSON round trip preserves topology:",
        are_isomorphic(t, invariant(back)),
    )
    print(f"  serialized size: {len(text)} bytes")


if __name__ == "__main__":
    main()
