"""Quickstart: the paper's pipeline in ten steps.

Run:  python examples/quickstart.py
"""

from repro import (
    Rect,
    SpatialInstance,
    classify,
    invariant,
    parse,
    realize,
    topologically_equivalent,
)
from repro.invariant import are_isomorphic, thematic, validate_invariant
from repro.logic import evaluate_cells


def main() -> None:
    # 1. A spatial database instance: names mapped to regions.
    lens = SpatialInstance(
        {"A": Rect(0, 0, 4, 4), "B": Rect(2, 2, 6, 6)}
    )
    print("instance:", lens)

    # 2. Egenhofer's 4-intersection relation between the two regions.
    print("relation(A, B):", classify(lens.ext("A"), lens.ext("B")).value)

    # 3. The topological invariant T_I (Example 3.1: 2 vertices, 4
    #    edges, 4 faces).
    t = invariant(lens)
    print("invariant counts (V, E, F):", t.counts())

    # 4. H-equivalence is invariant isomorphism (Theorem 3.4): the same
    #    topology at a different scale is equivalent...
    big = SpatialInstance(
        {"A": Rect(0, 0, 400, 400), "B": Rect(200, 200, 600, 600)}
    )
    print("lens ~ big lens:", topologically_equivalent(lens, big))

    # ...while a different topology is not.
    disjoint = SpatialInstance(
        {"A": Rect(0, 0, 2, 2), "B": Rect(5, 0, 7, 2)}
    )
    print("lens ~ disjoint:", topologically_equivalent(lens, disjoint))

    # 5. Validation (Theorem 3.8): T_I is a labeled planar graph.
    validate_invariant(t)
    print("invariant validates: True")

    # 6. Realization (Theorem 3.5): rebuild a polygonal instance from
    #    the abstract invariant alone, with the same invariant.
    rebuilt = realize(t)
    print(
        "realized instance homeomorphic to original:",
        are_isomorphic(t, invariant(rebuilt)),
    )

    # 7. The thematic mapping (Fig. 9): a classical relational database
    #    answering all topological queries.
    db = thematic(lens)
    print(
        "thematic relations:",
        {name: len(db[name]) for name in db.relation_names()},
    )

    # 8. A region-based query (Section 4), parsed and evaluated under
    #    cell semantics: do A and B share interior points?
    query = parse("exists r . subset(r, A) and subset(r, B)")
    print("A and B overlap (query):", evaluate_cells(query, lens))
    print("...on the disjoint instance:", evaluate_cells(query, disjoint))


if __name__ == "__main__":
    main()
