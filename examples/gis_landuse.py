"""A GIS scenario: land-use layers and topological queries.

The paper motivates its languages with geographic information systems;
this example models a small municipality — a city limit, a river
corridor, an industrial zone, a wetland, and a protected reserve — and
asks the kinds of questions a GIS would:

* the full pairwise relation table (Egenhofer's 4-intersection);
* region-based queries in the concrete syntax, evaluated under cell
  semantics;
* homeomorphism-invariance: reprojecting (stretching) the map does not
  change any topological answer.

Run:  python examples/gis_landuse.py
"""

from repro import Rect, SpatialInstance, invariant, topologically_equivalent
from repro.fourint import relation_table
from repro.geometry import Point
from repro.logic import evaluate_cells, parse
from repro.regions import Poly
from repro.transforms import PiecewiseMonotone, Symmetry


def build_municipality() -> SpatialInstance:
    city = Rect(0, 0, 30, 20)
    river = Poly(
        (
            Point(4, -2),
            Point(8, -2),
            Point(12, 8),
            Point(26, 14),
            Point(26, 18),
            Point(10, 12),
            Point(2, 2),
        )
    )
    industry = Rect(14, 2, 24, 8)
    wetland = Rect(20, 10, 28, 16)
    reserve = Rect(18, 9, 32, 19)
    return SpatialInstance(
        {
            "City": city,
            "River": river,
            "Industry": industry,
            "Wetland": wetland,
            "Reserve": reserve,
        }
    )


def main() -> None:
    gis = build_municipality()

    print("== pairwise topological relations (4-intersection) ==")
    table = relation_table(gis)
    names = gis.names()
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            print(f"  {a:9s} {table[(a, b)].value:10s} {b}")

    print("\n== region-based queries (Section 4 language) ==")
    queries = {
        "river crosses the industrial zone":
            "exists r . subset(r, River) and subset(r, Industry)",
        "the wetland is protected (inside the reserve)":
            "subset(Wetland, Reserve)",
        "the reserve spills outside the city limit":
            "not subset(Reserve, City)",
        "open land touches both industry and wetland":
            "exists r . connect(r, Industry) and connect(r, Wetland) "
            "and not overlap(r, Industry) and not overlap(r, Wetland)",
    }
    for description, text in queries.items():
        answer = evaluate_cells(parse(text), gis)
        print(f"  {description}: {answer}")

    print("\n== reprojection invariance (H-genericity) ==")
    # A monotone reprojection of both axes: a homeomorphism in S ⊂ H.
    stretch = PiecewiseMonotone([(-5, -7), (0, 0), (10, 35), (35, 90)])
    reprojected = Symmetry(stretch, stretch).apply_to_instance(gis)
    print(
        "  reprojected map homeomorphic to original:",
        topologically_equivalent(gis, reprojected),
    )
    for description, text in queries.items():
        before = evaluate_cells(parse(text), gis)
        after = evaluate_cells(parse(text), reprojected)
        status = "stable" if before == after else "CHANGED (bug!)"
        print(f"  {description}: {status}")

    print("\n== invariant sizes ==")
    t = invariant(gis)
    v, e, f = t.counts()
    print(f"  cell complex: {v} vertices, {e} edges, {f} faces")


if __name__ == "__main__":
    main()
