"""The thematic model as a PLA-style topological database.

Section 3 of the paper proposes storing *only* the invariant — a
relational database over the fixed schema Th, in the spirit of the U.S.
Census Bureau's PLA model — and answering every topological query
against it.  That raises the update problem: after editing the
relational data directly, is it still the invariant of some map?
Theorem 3.8 makes the check effective, and Theorem 3.5 rebuilds actual
geometry from the validated data.

This example walks the whole life cycle:

1. census tracts are captured as geometry and converted to a thematic
   database (Fig. 9);
2. topological questions are answered with classical first-order
   queries against the relations;
3. the database is edited — a bogus edit is caught by validation, a
   legal one passes;
4. the validated data is *realized* back into polygons.

Run:  python examples/census_pla.py
"""

import dataclasses

from repro import Rect, SpatialInstance
from repro.errors import ValidationError
from repro.invariant import (
    are_isomorphic,
    database_to_invariant,
    invariant,
    realize,
    thematic,
    validate_invariant,
)
from repro.relational import And, Atom, Const, Exists, Not, Var


def main() -> None:
    # Two adjacent tracts sharing a border segment, and a third tract
    # nested inside the first (an enclave).
    tracts = SpatialInstance(
        {
            "Tract1": Rect(0, 0, 10, 8),
            "Tract2": Rect(10, 0, 20, 8),
            "Enclave": Rect(3, 3, 6, 6),
        }
    )
    db = thematic(tracts)
    print("thematic database:", db)

    print("\n== relational queries against Th ==")
    shared_border = Exists(
        "e",
        And(
            Atom("Edges", Var("e")),
            Atom("Cell_Labels", Var("e"), Const("Tract1"), Const("b")),
            Atom("Cell_Labels", Var("e"), Const("Tract2"), Const("b")),
        ),
    )
    print("  Tract1 and Tract2 share a border:", shared_border.evaluate(db))

    enclave_inside = Exists(
        "f",
        And(
            Atom("Region_Faces", Const("Enclave"), Var("f")),
            Atom("Region_Faces", Const("Tract1"), Var("f")),
        ),
    )
    print("  Enclave lies within Tract1:", enclave_inside.evaluate(db))

    outside_exists = Exists(
        "f",
        And(
            Atom("Faces", Var("f")),
            Not(Atom("Exterior_Face", Var("f"))),
            Not(Atom("Region_Faces", Const("Tract1"), Var("f"))),
            Not(Atom("Region_Faces", Const("Tract2"), Var("f"))),
        ),
    )
    print(
        "  some bounded face belongs to no tract:",
        outside_exists.evaluate(db),
    )

    print("\n== update validation (Theorem 3.8) ==")
    t = database_to_invariant(db)

    # A bogus edit: claim the enclave also covers the exterior face.
    labels = dict(t.labels)
    idx = t.names.index("Enclave")
    ext_label = list(labels[t.exterior_face])
    ext_label[idx] = "o"
    labels[t.exterior_face] = tuple(ext_label)
    bogus = dataclasses.replace(t, labels=labels)
    try:
        validate_invariant(bogus)
        print("  bogus edit accepted (BUG)")
    except ValidationError as err:
        print(f"  bogus edit rejected: {err} (condition {err.condition})")

    # A legal edit: rename-free relabeling of cells is fine.
    renamed = t.relabeled(
        {c: f"cell_{i}" for i, c in enumerate(sorted(t.all_cells()))}
    )
    validate_invariant(renamed)
    print("  relabeled invariant validates: True")

    print("\n== realization (Theorem 3.5) ==")
    rebuilt = realize(renamed)
    print(
        "  rebuilt geometry homeomorphic to the original tracts:",
        are_isomorphic(invariant(rebuilt), invariant(tracts)),
    )
    for name in rebuilt.names():
        box = rebuilt.ext(name).bbox()
        print(
            f"  {name}: rebuilt bbox "
            f"[{float(box.xmin):.3f}, {float(box.ymin):.3f}] - "
            f"[{float(box.xmax):.3f}, {float(box.ymax):.3f}]"
        )


if __name__ == "__main__":
    main()
